"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate", "Bert-S",
                                          "tileflow"])
        assert args.arch == "edge"
        assert not args.show_tree


class TestCommands:
    def test_evaluate_attention(self, capsys):
        assert main(["evaluate", "Bert-S", "flat_rgran"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_evaluate_conv_with_tree(self, capsys):
        assert main(["evaluate", "CC3", "fused_layer", "--arch", "cloud",
                     "--show-tree", "--show-notation"]) == 0
        out = capsys.readouterr().out
        assert "fused_layer" in out and "level" in out

    def test_compare(self, capsys):
        assert main(["compare", "ViT/16-B"]) == 0
        out = capsys.readouterr().out
        assert "tileflow" in out and "speedup" in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "GPT-7", "tileflow"])

    def test_search_small(self, capsys):
        assert main(["search", "ViT/16-B", "--generations", "2",
                     "--population", "4", "--samples", "5"]) == 0
        assert "best ordering/binding" in capsys.readouterr().out

    def test_experiment_tab6(self, capsys):
        assert main(["experiment", "tab6"]) == 0
        assert "Table 6" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_validate_small(self, capsys):
        assert main(["validate", "--mappings", "40"]) == 0
        assert "Figure 8" in capsys.readouterr().out


class TestJsonOutput:
    def test_evaluate_json(self, capsys):
        import json
        assert main(["evaluate", "Bert-S", "tileflow", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["arch"] == "Edge"
        assert payload["latency_cycles"] > 0
        assert "traffic" in payload and "violations" in payload

    def test_evaluate_json_is_clean_despite_show_tree(self, capsys):
        import json
        # --show-tree headers must not interleave with the JSON payload.
        assert main(["evaluate", "Bert-S", "tileflow", "--json",
                     "--show-tree", "--show-notation"]) == 0
        json.loads(capsys.readouterr().out)

    def test_search_json(self, capsys):
        import json
        assert main(["search", "ViT/16-B", "--generations", "1",
                     "--population", "4", "--samples", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "best_factors" in payload and "trace" in payload
        assert payload["result"]["latency_cycles"] > 0
        assert payload["normalized_trace"][-1] in (0.0, 1.0)

    def test_compare_json(self, capsys):
        import json
        assert main(["compare", "ViT/16-B", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["dataflow"] for r in payload["dataflows"]]
        assert all("latency_cycles" in r for r in payload["dataflows"])


class TestQuiet:
    def test_quiet_suppresses_output(self, capsys):
        assert main(["evaluate", "Bert-S", "tileflow", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_quiet_keeps_exit_code(self):
        # infeasible mapping still signals through the return code
        assert main(["evaluate", "Bert-S", "tileflow", "--quiet"]) in (0, 1)


class TestCacheCommand:
    def test_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["search", "Bert-S", "--cache-dir", "/tmp/x",
             "--cache-bound", "128", "--no-cache-persist"])
        assert args.cache_dir == "/tmp/x"
        assert args.cache_bound == 128
        assert args.no_cache_persist
        # serve takes the same flags; cache requires --cache-dir.
        args = build_parser().parse_args(["serve", "--cache-dir", "/tmp/x"])
        assert args.cache_dir == "/tmp/x"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])

    def test_search_writes_shards_then_stats_and_purge(self, tmp_path,
                                                       capsys):
        import json
        cache_dir = str(tmp_path / "cache")
        assert main(["search", "ViT/16-B", "--generations", "1",
                     "--population", "4", "--samples", "3",
                     "--cache-dir", cache_dir, "--quiet"]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "walkvol" in out and "total:" in out
        assert "1 namespace(s)" in out

        # Purge by workload/arch resolves the namespace for you.
        assert main(["cache", "purge", "--cache-dir", cache_dir,
                     "--workload", "ViT/16-B", "--arch", "edge"]) == 0
        assert "removed 1 shard(s)" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_entries"] == 0
        assert payload["namespaces"] == []

    def test_cache_clear_and_purge_selector_required(self, tmp_path,
                                                     capsys):
        import json
        from repro.engine.cache import DiskArtifactStore
        cache_dir = str(tmp_path / "cache")
        DiskArtifactStore(cache_dir).flush("ns|x", "walkvol", {"k": 1})

        with pytest.raises(SystemExit, match="--namespace"):
            main(["cache", "purge", "--cache-dir", cache_dir])

        assert main(["cache", "purge", "--cache-dir", cache_dir,
                     "--namespace", "ns|", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == ["ns|x"]

        DiskArtifactStore(cache_dir).flush("ns|y", "cov", {"k": 1})
        assert main(["cache", "clear", "--cache-dir", cache_dir,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 1


class TestObservabilityFlags:
    def test_profile_prints_breakdown_to_stderr(self, capsys):
        assert main(["evaluate", "Bert-S", "tileflow", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "latency" in captured.out  # normal output untouched
        assert "spans by self-time" in captured.err
        assert "model.pass.datamovement" in captured.err
        assert "model.evaluations" in captured.err

    def test_profile_does_not_pollute_json(self, capsys):
        import json
        assert main(["evaluate", "Bert-S", "tileflow", "--json",
                     "--profile"]) == 0
        json.loads(capsys.readouterr().out)

    def test_search_profile_has_search_counters(self, capsys):
        assert main(["search", "ViT/16-B", "--generations", "1",
                     "--population", "4", "--samples", "3",
                     "--profile"]) == 0
        err = capsys.readouterr().err
        assert "mapper.evaluations" in err
        assert "mcts.samples" in err
        assert "ga.generation" in err

    def test_trace_then_stats_reproduces_summary(self, tmp_path, capsys):
        trace = str(tmp_path / "search.jsonl")
        assert main(["search", "ViT/16-B", "--generations", "1",
                     "--population", "4", "--samples", "3",
                     "--profile", "--trace", trace]) == 0
        live = capsys.readouterr().err.strip()
        assert main(["stats", trace]) == 0
        replayed = capsys.readouterr().out.strip()
        assert replayed == live

    def test_stats_json(self, tmp_path, capsys):
        import json
        trace = str(tmp_path / "eval.jsonl")
        assert main(["evaluate", "Bert-S", "tileflow", "--quiet",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["stats", trace, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {s["name"] for s in payload["spans"]}
        assert "model.evaluate" in names
        assert payload["metrics"]["model.evaluations"]["value"] == 1.0

    def test_tracing_disabled_after_command(self):
        from repro import obs
        assert main(["evaluate", "Bert-S", "tileflow", "--quiet",
                     "--profile"]) == 0
        assert not obs.is_enabled()
