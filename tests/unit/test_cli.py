"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate", "Bert-S",
                                          "tileflow"])
        assert args.arch == "edge"
        assert not args.show_tree


class TestCommands:
    def test_evaluate_attention(self, capsys):
        assert main(["evaluate", "Bert-S", "flat_rgran"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_evaluate_conv_with_tree(self, capsys):
        assert main(["evaluate", "CC3", "fused_layer", "--arch", "cloud",
                     "--show-tree", "--show-notation"]) == 0
        out = capsys.readouterr().out
        assert "fused_layer" in out and "level" in out

    def test_compare(self, capsys):
        assert main(["compare", "ViT/16-B"]) == 0
        out = capsys.readouterr().out
        assert "tileflow" in out and "speedup" in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "GPT-7", "tileflow"])

    def test_search_small(self, capsys):
        assert main(["search", "ViT/16-B", "--generations", "2",
                     "--population", "4", "--samples", "5"]) == 0
        assert "best ordering/binding" in capsys.readouterr().out

    def test_experiment_tab6(self, capsys):
        assert main(["experiment", "tab6"]) == 0
        assert "Table 6" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_validate_small(self, capsys):
        assert main(["validate", "--mappings", "40"]) == 0
        assert "Figure 8" in capsys.readouterr().out


class TestJsonOutput:
    def test_evaluate_json(self, capsys):
        import json
        assert main(["evaluate", "Bert-S", "tileflow", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["arch"] == "Edge"
        assert payload["latency_cycles"] > 0
        assert "traffic" in payload and "violations" in payload
