"""Unit tests for the structured event bus (repro.obs.events)."""

import io
import json

import pytest

from repro import arch, obs, workloads
from repro.obs import events
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def clean_obs():
    yield
    events.disable()
    obs.disable()
    obs_metrics.registry().reset()


class TestBus:
    def test_disabled_emit_is_noop(self):
        assert not events.is_enabled()
        assert events.emit("run.start", command="x", label="") is None

    def test_emit_assigns_sequential_seq(self):
        sink = events.RingSink()
        events.enable(sinks=[sink])
        events.emit("run.start", command="a", label="")
        events.emit("run.end", command="a", outcome="ok", wall_s=0.1)
        assert [e.seq for e in sink.events] == [0, 1]
        assert [e.kind for e in sink.events] == ["run.start", "run.end"]
        assert sink.events[0].category == "run"

    def test_unknown_kind_rejected(self):
        bus = events.EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.emit("no.such.kind", x=1)

    def test_payload_field_named_kind(self):
        # engine.subtree's payload has a field literally named "kind".
        bus = events.EventBus([sink := events.RingSink()])
        bus.emit("engine.subtree", kind="slices", hits=1, misses=2,
                 evictions=0)
        assert sink.events[0].payload["kind"] == "slices"

    def test_replay_preserves_time_restamps_seq(self):
        worker = events.RingSink(capacity=None)
        bus = events.EventBus([worker])
        bus.emit("mcts.sample", _t=123.0, sample=0, cost=1.0, best_cost=1.0)
        records = events.as_records(worker.events)

        parent_sink = events.RingSink()
        parent = events.EventBus([parent_sink])
        parent.emit("run.start", command="s", label="")
        assert parent.replay(records) == 1
        replayed = parent_sink.events[-1]
        assert replayed.t == 123.0 and replayed.seq == 1
        assert replayed.kind == "mcts.sample"

    def test_ring_sink_bounds_and_counts_drops(self):
        sink = events.RingSink(capacity=2)
        bus = events.EventBus([sink])
        for i in range(5):
            bus.emit("search.progress", phase="ga", step=i, total=5,
                     best_cost=None)
        assert len(sink.events) == 2
        assert sink.dropped == 3
        assert [e.payload["step"] for e in sink.events] == [3, 4]

    def test_callback_sink_survives_broken_subscriber(self):
        calls = []

        def broken(event):
            calls.append(event.kind)
            raise RuntimeError("subscriber bug")

        bus = events.EventBus([events.CallbackSink(broken, max_errors=2)])
        for _ in range(4):
            bus.emit("run.start", command="x", label="")
        assert calls == ["run.start", "run.start"]  # muted after 2 strikes

    def test_jsonl_sink_writes_valid_lines(self):
        buf = io.StringIO()
        bus = events.EventBus([events.JsonlSink(buf)])
        bus.emit("ga.generation", generation=0, best_cost=2.0,
                 mean_cost=None, evaluated=4, reused=0)
        bus.close()
        (line,) = buf.getvalue().splitlines()
        obj = json.loads(line)
        assert events.validate_record(obj) == []
        assert obj["payload"]["mean_cost"] is None


class TestCostMapping:
    def test_jsonable_cost(self):
        assert events.jsonable_cost(float("inf")) is None
        assert events.jsonable_cost(float("-inf")) is None
        assert events.jsonable_cost(float("nan")) is None
        assert events.jsonable_cost(None) is None
        assert events.jsonable_cost(3) == 3.0


class TestSchema:
    def test_checked_in_schema_matches_registry(self):
        with open("tests/data/event_schema.json") as fh:
            checked_in = json.load(fh)
        assert checked_in == events.event_schema(), (
            "tests/data/event_schema.json is stale; regenerate with "
            "`python -m repro.obs.events --print-schema`")

    def test_every_kind_has_known_category(self):
        for kind, (category, fields) in events.EVENT_TYPES.items():
            assert category in events.CATEGORIES, kind
            assert fields, kind

    def test_validate_record_rejects_bad_payloads(self):
        good = {"type": "event", "seq": 0, "t": 0.0, "kind": "mcts.sample",
                "cat": "search",
                "payload": {"sample": 0, "cost": 1.0, "best_cost": 1.0}}
        assert events.validate_record(good) == []
        bad_type = dict(good, payload={"sample": "zero", "cost": 1.0,
                                       "best_cost": 1.0})
        assert any("sample" in p for p in events.validate_record(bad_type))
        extra = dict(good, payload=dict(good["payload"], bogus=1))
        assert any("unexpected" in p for p in events.validate_record(extra))
        wrong_cat = dict(good, cat="cache")
        assert any("cat" in p for p in events.validate_record(wrong_cat))

    def test_validate_jsonl_reports_line_numbers(self):
        buf = io.StringIO('not json\n{"type": "event"}\n')
        problems = events.validate_jsonl(buf)
        assert any(p.startswith("line 1:") for p in problems)
        assert any(p.startswith("line 2:") for p in problems)


class TestSearchEmission:
    def _workload(self):
        return workloads.self_attention(2, 32, 64, expand_softmax=False)

    def test_search_emits_expected_kinds(self):
        from repro.mapper import TileFlowMapper
        sink = events.RingSink(capacity=None)
        events.enable(sinks=[sink])
        TileFlowMapper(self._workload(), arch.edge(), seed=0).explore(
            generations=2, population=4, mcts_samples=4)
        events.disable()
        kinds = {e.kind for e in sink.events}
        assert {"ga.generation", "search.progress", "mcts.sample",
                "engine.memo", "engine.subtree"} <= kinds
        gens = [e.payload for e in sink.events
                if e.kind == "ga.generation"]
        assert [g["generation"] for g in gens] == [0, 1]
        steps = [e.payload for e in sink.events
                 if e.kind == "search.progress"]
        assert all(s["phase"] == "ga" and s["total"] == 2 for s in steps)

    def test_prescreen_reject_carries_reason_codes(self):
        from repro.engine import EvaluationEngine
        from repro.mapper.encoding import (Genome, genome_factor_space)
        wl = self._workload()
        # A tiny L1 makes the memory-capacity bound fire.
        tight = arch.edge().with_level("L1", capacity_bytes=64)
        engine = EvaluationEngine(wl, tight)
        sink = events.RingSink(capacity=None)
        events.enable(sinks=[sink])
        genome = Genome.unfused(wl)
        space = genome_factor_space(wl, genome)
        engine.genome_cost(genome, space.default_point())
        events.disable()
        rejects = [e for e in sink.events if e.kind == "prescreen.reject"]
        assert rejects, "expected the tight arch to trigger a rejection"
        codes = rejects[0].payload["codes"]
        assert any(c.startswith(("memory.capacity:", "compute."))
                   for c in codes)
        # Reason codes are index-parallel to the human-readable strings.
        assert len(codes) >= 1

    def test_events_do_not_change_search(self):
        from repro.mapper import TileFlowMapper
        wl = self._workload()
        baseline = TileFlowMapper(wl, arch.edge(), seed=0).explore(
            generations=2, population=4, mcts_samples=4)
        events.enable(sinks=[events.RingSink(capacity=None)])
        streamed = TileFlowMapper(wl, arch.edge(), seed=0).explore(
            generations=2, population=4, mcts_samples=4)
        events.disable()
        assert streamed.to_dict() == baseline.to_dict()
