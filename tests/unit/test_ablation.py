"""Unit tests for the model-ablation machinery."""

import pytest

from repro import arch
from repro.analysis import TileFlowModel
from repro.experiments.ablation import (binding_ablation,
                                        movement_rule_ablation)
from repro.dataflows import conv_dataflow
from repro.workloads import conv_chain


class TestMovementAblation:
    def test_disabling_eviction_never_adds_traffic(self):
        rows = movement_rule_ablation("eviction", "ViT/16-B")
        assert all(r.ablated_dram <= r.full_dram + 1e-6 for r in rows)

    def test_disabling_rmw_never_adds_traffic(self):
        rows = movement_rule_ablation("rmw", "ViT/16-B")
        assert all(r.ablated_dram <= r.full_dram + 1e-6 for r in rows)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            movement_rule_ablation("telepathy")

    def test_eviction_matters_for_seq_conv(self):
        """conv layerwise-style Seq trees move more with eviction on."""
        wl = conv_chain(16, 28, 28, 32, 32)
        spec = arch.edge()
        tree_full = conv_dataflow("layerwise", wl, spec)
        tree_abl = conv_dataflow("layerwise", wl, spec)
        full = TileFlowModel(spec).evaluate(tree_full)
        ablated = TileFlowModel(spec,
                                model_eviction=False).evaluate(tree_abl)
        assert ablated.dram_words() <= full.dram_words()


class TestBindingAblation:
    def test_pipe_is_fastest(self):
        cycles = binding_ablation("ViT/16-B")
        assert cycles["Pipe"] <= min(cycles["Shar"], cycles["Seq"])

    def test_all_three_bindings_present(self):
        cycles = binding_ablation("ViT/16-B")
        assert set(cycles) == {"Pipe", "Shar", "Seq"}
