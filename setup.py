"""Setup shim for environments without the `wheel` package (offline).

The real metadata lives in pyproject.toml; this file exists so that
`pip install -e .` can fall back to the legacy setuptools editable path.
"""
from setuptools import setup

setup()
