"""Architecture analysis: how dataflow choice interacts with the machine.

Sweeps DRAM bandwidth and PE-array size on the Edge accelerator and shows
where each self-attention dataflow is memory- vs compute-bound — the kind
of architecture/dataflow co-design study TileFlow is built for (§7.5).

Run:  python examples/architecture_sweep.py
"""

from repro import arch
from repro.analysis import TileFlowModel
from repro.dataflows import ATTENTION_DATAFLOWS
from repro.workloads import self_attention


def main() -> None:
    workload = self_attention(8, 512, 512, name="Bert-S")
    base = arch.edge()

    print("=== DRAM bandwidth sweep (cycles) ===")
    bandwidths = (15, 30, 60, 120, 240, 480)
    print(f"{'dataflow':12s} " + " ".join(f"{bw:>9d}" for bw in bandwidths))
    for name in ("layerwise", "flat_rgran", "tileflow"):
        cells = []
        for bw in bandwidths:
            spec = base.with_level("DRAM", bandwidth_gbs=float(bw))
            result = TileFlowModel(spec).evaluate(
                ATTENTION_DATAFLOWS[name](workload, spec))
            cells.append(f"{result.latency_cycles:9.3g}")
        print(f"{name:12s} " + " ".join(cells))

    print("\n=== PE array sweep (cycles) ===")
    sides = (8, 16, 32, 64, 128)
    print(f"{'dataflow':12s} " + " ".join(f"{s:>3d}^2    " for s in sides))
    for name in ("layerwise", "flat_rgran", "tileflow"):
        cells = []
        for side in sides:
            spec = base.with_(pe_count=side * side,
                              vector_pe_count=max(16, side * side // 5))
            result = TileFlowModel(spec).evaluate(
                ATTENTION_DATAFLOWS[name](workload, spec))
            cells.append(f"{result.latency_cycles:9.3g}")
        print(f"{name:12s} " + " ".join(cells))


if __name__ == "__main__":
    main()
