"""Quickstart: evaluate a fusion dataflow for one attention layer.

Builds the Bert-S self-attention workload, expresses the FLAT-RGran
fusion dataflow in TileFlow's tile-centric notation, runs the tree-based
analysis on the Edge accelerator, and prints the tree, the notation, and
the performance estimate.

Run:  python examples/quickstart.py
"""

from repro import arch
from repro.analysis import TileFlowModel
from repro.dataflows import attention_dataflow
from repro.tile import render_notation
from repro.workloads import self_attention


def main() -> None:
    workload = self_attention(num_heads=8, seq_len=512, hidden=512,
                              name="Bert-S")
    spec = arch.edge()

    tree = attention_dataflow("flat_rgran", workload, spec)
    print("=== analysis tree ===")
    print(tree.render())
    print()
    print("=== tile-centric notation ===")
    print(render_notation(tree))
    print()

    result = TileFlowModel(spec).evaluate(tree)
    print("=== evaluation ===")
    print(result.summary())
    print()
    print(f"DRAM words moved : {result.dram_words():,.0f}")
    print(f"L1 words moved   : {result.onchip_words(1):,.0f}")
    print(f"PE utilization   : {result.utilization:.1%}")


if __name__ == "__main__":
    main()
