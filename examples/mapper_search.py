"""Explore the 3D fusion-dataflow design space with the TileFlow mapper.

Runs the GA (compute ordering x resource binding) + MCTS (loop tiling)
search of §6 on a small self-attention layer and prints the exploration
trace and the champion mapping.

Run:  python examples/mapper_search.py

Set ``REPRO_PROFILE=1`` to print a profile summary (spans by self-time,
search counters) to stderr when the search finishes — the worked example
of docs/OBSERVABILITY.md.
"""

import os
import sys

from repro import arch, obs
from repro.mapper import TileFlowMapper
from repro.tile import render_notation
from repro.workloads import self_attention


def main() -> None:
    profiling = os.environ.get("REPRO_PROFILE") == "1"
    tracer = obs.enable() if profiling else None

    workload = self_attention(num_heads=8, seq_len=256, hidden=512,
                              name="attn-search")
    spec = arch.edge()
    mapper = TileFlowMapper(workload, spec, seed=7)
    result = mapper.explore(generations=6, population=10, mcts_samples=20)

    if tracer is not None:
        obs.disable()
        print(obs.render_profile(tracer.spans, obs.metrics_snapshot()),
              file=sys.stderr)

    print("exploration trace (best cost per generation):")
    for gen, cost in enumerate(result.trace):
        bar = "#" * max(1, int(40 * result.trace[-1] / cost))
        print(f"  gen {gen}: {cost:12.4g} {bar}")
    print()
    print(f"champion ordering/binding: "
          f"{result.best_genome.describe(workload)}")
    print(f"champion tiling factors  : {result.best_factors}")
    print()
    print(render_notation(result.best_tree))
    print()
    print(result.best_result.summary())


if __name__ == "__main__":
    main()
