"""Compare every named self-attention fusion dataflow on Edge and Cloud.

Reproduces the headline comparison of the paper (Fig. 10/11) for one
shape: Layerwise vs Uni-pipe vs FLAT-HGran/RGran vs Chimera vs the
TileFlow dataflow, reporting cycles, DRAM traffic, energy, and resource
usage.

Run:  python examples/attention_fusion.py [shape-name]
"""

import sys

from repro import arch
from repro.analysis import TileFlowModel
from repro.dataflows import ATTENTION_DATAFLOWS
from repro.workloads import ATTENTION_SHAPES, attention_from_shape


def main(shape_name: str = "Bert-B") -> None:
    shape = ATTENTION_SHAPES[shape_name]
    workload = attention_from_shape(shape)
    print(f"workload: {workload.name}  (heads={shape.num_heads}, "
          f"seq={shape.seq_len}, hidden={shape.hidden})")
    for spec in (arch.edge(), arch.cloud()):
        model = TileFlowModel(spec)
        print(f"\n=== {spec.name} ===")
        print(f"{'dataflow':12s} {'cycles':>12s} {'speedup':>8s} "
              f"{'DRAM words':>12s} {'energy (uJ)':>12s} {'PEs':>8s}")
        base = None
        for name, template in ATTENTION_DATAFLOWS.items():
            result = model.evaluate(template(workload, spec))
            base = base or result.latency_cycles
            flags = " OOM" if result.violations else ""
            print(f"{name:12s} {result.latency_cycles:12.4g} "
                  f"{base / result.latency_cycles:7.2f}x "
                  f"{result.dram_words():12.4g} "
                  f"{result.energy_pj / 1e6:12.4g} "
                  f"{result.resources.num_pe:8d}{flags}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Bert-B")
