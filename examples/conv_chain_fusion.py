"""Fused convolution chains: Layerwise vs Fused-Layer vs ISOS vs TileFlow.

Shows the Fused-Layer halo/recompute trade-off on a Table 3 chain: the
fused dataflows eliminate most DRAM traffic for the intermediate
activation at the cost of recomputing tile borders.

Run:  python examples/conv_chain_fusion.py [CC1..CC5]
"""

import sys

from repro import arch
from repro.analysis import TileFlowModel
from repro.dataflows import CONV_DATAFLOWS
from repro.workloads import CONV_CHAIN_SHAPES, conv_chain_from_shape


def main(shape_name: str = "CC3") -> None:
    workload = conv_chain_from_shape(CONV_CHAIN_SHAPES[shape_name])
    spec = arch.cloud()
    model = TileFlowModel(spec)
    print(f"workload: {workload.name} on {spec.name}")
    ideal_ops = workload.total_ops
    print(f"{'dataflow':12s} {'cycles':>12s} {'DRAM words':>12s} "
          f"{'Act via DRAM':>13s} {'recompute':>10s}")
    for name, template in CONV_DATAFLOWS.items():
        tree = template(workload, spec)
        result = model.evaluate(tree)
        dram = result.traffic[spec.dram_index]
        act_words = (dram.read.get("Act", 0.0)
                     + dram.update.get("Act", 0.0))
        # Recompute factor: executed ops over the algorithmic minimum.
        executed = 0.0
        for leaf in tree.root.leaves():
            execs = 1.0
            for a in leaf.ancestors():
                execs *= a.trip_count
            executed += leaf.trip_count * execs * leaf.op.ops_per_point
        print(f"{name:12s} {result.latency_cycles:12.4g} "
              f"{result.dram_words():12.4g} {act_words:13.4g} "
              f"{executed / ideal_ops:9.2f}x")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CC3")
