"""Fig. 10: self-attention dataflow comparison on the Edge accelerator."""

from conftest import print_block

from repro.arch import edge
from repro.experiments.comparison import (attention_comparison,
                                          format_dram_movement,
                                          format_l1_breakdown,
                                          format_normalized_cycles,
                                          format_onchip_movement)


def test_fig10_edge_attention(benchmark):
    result = benchmark(attention_comparison, edge())
    print_block(format_normalized_cycles(
        result, "Figure 10a: normalized cycles (Edge)"))
    print_block(format_dram_movement(
        result, "Figure 10b: normalized DRAM data movement"))
    print_block(format_onchip_movement(
        result, 1, "Figure 10c: normalized L1 data movement"))
    print_block(format_l1_breakdown(
        result, "Bert-B", "Figure 10d: L1 movement breakdown (Bert-B)"))
    gm = result.geomean_speedups()
    # Paper shape: every fusion dataflow beats Layerwise; TileFlow wins.
    assert gm["tileflow"] == max(gm.values())
    assert gm["flat_hgran"] > 1.5
    # Fusion removes the bulk of DRAM traffic (paper: ~90%).
    per_shape = result.by_shape()["Bert-S"]
    assert (per_shape["flat_rgran"].result.dram_words()
            < 0.2 * per_shape["layerwise"].result.dram_words())
