#!/usr/bin/env python
"""Tiered artifact store benchmark: L3 warm-start and segmented eviction.

Measures what the cache tiers buy on top of the in-process (L1) subtree
artifact cache, and proves the tiers change nothing but the wall clock:

* **L3 warm-start** — the headline number.  A fixed MCTS factor search
  (two random genomes, ``--samples`` samples each) runs against a fresh
  ``--cache-dir`` (cold: empty disk, pays the flush on shutdown) and
  then repeats with a brand-new engine against the now-populated
  directory (warm: every tiered artifact kind is served from disk
  instead of recomputed).  Cold and warm rounds interleave over
  ``--repeats`` rounds and are compared on min-time.  The PR's
  acceptance bar is a >= 1.5x cold/warm speedup, with byte-identical
  champions and a nonzero ``subtree_l3_hits`` count in the warm arm.
* **Segmented eviction at the 8,192 bound** — a cyclic re-evaluation
  sweep (``--sweep-trees`` random mappings evaluated for
  ``--sweep-rounds`` rounds, the evaluation-service sweep/rerun access
  shape) whose artifact working set overflows the default L1 bound.
  Insertion-order eviction degenerates to full per-round turnover;
  segmented (probationary/protected) eviction promotes re-hit entries
  and redirects churn onto one-shot probationary ones.  The gate:
  protected-kind (``walkvol``, ``groupflows``) evictions strictly
  reduced vs the insertion-order baseline at the same bound, with
  byte-identical evaluation results.
* **Frozen-oracle identity through cold L1 + warm L3** — every entry of
  ``tests/data/analysis_oracle.json`` is computed once through an
  L3-backed cache (seeding the disk tier), then recomputed through a
  *fresh* L1 fronting the same disk store.  The second pass must
  reproduce the frozen file byte-for-byte while actually serving
  artifacts from disk (nonzero L3 hits).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_cache.py

Emits ``BENCH_cache.json``.  Exits non-zero if the warm-start floor
(``--min-speedup``, default 1.5) is missed, protected-kind evictions
are not reduced, or any identity check fails.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import arch as arch_mod  # noqa: E402
from repro.engine import EvaluationEngine  # noqa: E402
from repro.engine.cache import (DiskArtifactStore,  # noqa: E402
                                SubtreeArtifactCache)
from repro.mapper import (Genome, build_genome_tree,  # noqa: E402
                          genome_factor_space)
from repro.workloads import (ATTENTION_SHAPES,  # noqa: E402
                             attention_from_shape)

ORACLE_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "tests",
                           "data", "analysis_oracle.json")

#: The kinds the segmented policy exists to protect (high re-use,
#: expensive to recompute) — the eviction gate counts these.
PROTECTED_KINDS = ("walkvol", "groupflows")


def _workload(args: argparse.Namespace):
    return attention_from_shape(ATTENTION_SHAPES[args.workload])


# ---------------------------------------------------------------------------
# Arm 1: L3 warm-start on a repeated search.

def search_run(args: argparse.Namespace, cache_dir: str
               ) -> Tuple[float, List, Dict]:
    """One timed repeated-search unit: build an engine against
    ``cache_dir``, tune two fixed random genomes, shut down (flushing
    the disk tier).  Timing covers the whole rerun including the flush —
    the honest cost of ``repro search --cache-dir`` end to end."""
    workload = _workload(args)
    rng = random.Random(args.seed)
    genomes = [Genome.random(workload, rng) for _ in range(2)]
    start = time.perf_counter()
    engine = EvaluationEngine(workload, arch_mod.edge(),
                              subtree_cache_size=args.warm_bound,
                              cache_dir=cache_dir)
    champions = [engine.tune_genome(g, seed=100 + i, samples=args.samples)
                 for i, g in enumerate(genomes)]
    engine.shutdown()
    seconds = time.perf_counter() - start
    stats = {"engine": engine.stats.to_dict(),
             "subtree_cache": engine.subtree_cache.stats()}
    return seconds, champions, stats


def warm_start_arm(args: argparse.Namespace) -> Dict[str, object]:
    scratch = tempfile.mkdtemp(prefix="bench-cache-")
    try:
        # Discarded warm-up (interpreter/page-cache effects).
        search_run(args, os.path.join(scratch, "warmup"))

        seed_dir = os.path.join(scratch, "seed")
        times: Dict[str, List[float]] = {"cold": [], "warm": []}
        champions: Dict[str, List] = {}
        stats: Dict[str, Dict] = {}
        for round_no in range(args.repeats):
            # Cold: a directory this run has never seen.  Round 0's cold
            # run doubles as the seeding run for every warm round.
            cold_dir = (seed_dir if round_no == 0
                        else os.path.join(scratch, f"cold{round_no}"))
            for name, cache_dir in (("cold", cold_dir), ("warm", seed_dir)):
                seconds, champs, st = search_run(args, cache_dir)
                times[name].append(seconds)
                champions[name] = champs
                stats[name] = st
                print(f"[bench] round {round_no + 1}/{args.repeats} "
                      f"{name}: {seconds:.3f}s", flush=True)
        cold, warm = min(times["cold"]), min(times["warm"])
        speedup = cold / warm
        identical = champions["cold"] == champions["warm"]
        l3_hits = stats["warm"]["engine"]["subtree_l3_hits"]
        print(f"[bench] warm-start: cold {cold:.3f}s warm {warm:.3f}s "
              f"-> {speedup:.2f}x, champions identical: {identical}, "
              f"warm L3 hits: {l3_hits}", flush=True)
        return {
            "seconds_cold": times["cold"], "seconds_warm": times["warm"],
            "min_seconds_cold": cold, "min_seconds_warm": warm,
            "speedup": speedup,
            "champions_identical": identical,
            "warm_l3_hits": l3_hits,
            "warm_engine_stats": stats["warm"]["engine"],
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


# ---------------------------------------------------------------------------
# Arm 2: segmented vs insertion-order eviction at the default bound.

def _sweep_trees(args: argparse.Namespace) -> List:
    workload = _workload(args)
    spec = arch_mod.edge()
    rng = random.Random(args.seed + 31)
    out = []
    for _ in range(args.sweep_trees):
        genome = Genome.random(workload, rng)
        factors = genome_factor_space(workload, genome).random_point(rng)
        out.append(build_genome_tree(workload, spec, genome, factors))
    return out


def sweep_run(args: argparse.Namespace, trees: List, policy: str
              ) -> Dict[str, object]:
    """Cyclic sweep: every tree evaluated ``--sweep-rounds`` times
    through one bounded cache under ``policy``."""
    cache = SubtreeArtifactCache(args.bound, policy=policy)
    engine = EvaluationEngine(_workload(args), arch_mod.edge(),
                              subtree_cache=cache)
    results = []
    start = time.perf_counter()
    for _ in range(args.sweep_rounds):
        for tree in trees:
            results.append(engine.evaluate_tree(tree).to_dict())
    seconds = time.perf_counter() - start
    engine.shutdown()
    by_kind = cache.counts_by_kind()
    evictions = cache.evictions_by_kind()
    return {
        "policy": policy,
        "seconds": seconds,
        "results": results,
        "evictions_by_kind": evictions,
        "protected_evictions": sum(evictions.get(k, 0)
                                   for k in PROTECTED_KINDS),
        "hit_rates": {kind: h / (h + m)
                      for kind, (h, m, _e) in sorted(by_kind.items())
                      if h + m},
        "protected_hit_rate": (
            lambda h, m: h / (h + m) if h + m else 0.0)(
                sum(by_kind.get(k, (0, 0, 0))[0] for k in PROTECTED_KINDS),
                sum(by_kind.get(k, (0, 0, 0))[1] for k in PROTECTED_KINDS)),
    }


def eviction_arm(args: argparse.Namespace) -> Dict[str, object]:
    trees = _sweep_trees(args)
    arms = {}
    for policy in ("insertion", "segmented"):
        arms[policy] = sweep_run(args, trees, policy)
        print(f"[bench] sweep policy={policy}: "
              f"{arms[policy]['seconds']:.3f}s, protected evictions "
              f"{arms[policy]['protected_evictions']}", flush=True)
    identical = arms["insertion"].pop("results") == \
        arms["segmented"].pop("results")
    reduced = (arms["segmented"]["protected_evictions"]
               < arms["insertion"]["protected_evictions"])
    print(f"[bench] eviction: protected-kind evictions "
          f"{arms['insertion']['protected_evictions']} (insertion) -> "
          f"{arms['segmented']['protected_evictions']} (segmented), "
          f"reduced: {reduced}, results identical: {identical}",
          flush=True)
    return {
        "bound": args.bound,
        "sweep_trees": args.sweep_trees,
        "sweep_rounds": args.sweep_rounds,
        "insertion": arms["insertion"],
        "segmented": arms["segmented"],
        "protected_evictions_reduced": reduced,
        "results_identical": identical,
    }


# ---------------------------------------------------------------------------
# Arm 3: frozen oracle through cold L1 + warm L3.

def _oracle_payload(cache: SubtreeArtifactCache) -> Dict[str, object]:
    """The frozen-oracle entry recipe (same as
    ``tests/property/test_prop_pipeline.py`` and
    ``benchmarks/bench_incremental.py``), every evaluation carrying
    ``cache``."""
    from repro.analysis import TileFlowModel
    from repro.dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                                 attention_dataflow, conv_dataflow)
    from repro.workloads import (CONV_CHAIN_SHAPES, conv_chain_from_shape,
                                 self_attention)

    def evaluate(model, tree):
        ctx = model.context(tree, artifact_cache=cache)
        return model.evaluate(tree, context=ctx)

    out = {}
    for shape in ("Bert-S", "ViT/16-B"):
        wl = attention_from_shape(ATTENTION_SHAPES[shape])
        for aname, spec in (("edge", arch_mod.edge()),
                            ("cloud", arch_mod.cloud())):
            model = TileFlowModel(spec)
            for df in ATTENTION_DATAFLOWS:
                r = evaluate(model, attention_dataflow(df, wl, spec))
                out[f"attn/{shape}/{aname}/{df}"] = r.to_dict()
    wl = conv_chain_from_shape(CONV_CHAIN_SHAPES["CC1"])
    spec = arch_mod.edge()
    model = TileFlowModel(spec)
    for df in CONV_DATAFLOWS:
        r = evaluate(model, conv_dataflow(df, wl, spec))
        out[f"conv/CC1/edge/{df}"] = r.to_dict()
    wl = self_attention(2, 32, 64, expand_softmax=False)
    model = TileFlowModel(spec)
    rng = random.Random(1234)
    for i in range(30):
        genome = Genome.random(wl, rng)
        factors = genome_factor_space(wl, genome).random_point(rng)
        tree = build_genome_tree(wl, spec, genome, factors)
        out[f"genome/{i}"] = evaluate(model, tree).to_dict()
    return out


def oracle_through_tiers() -> Dict[str, object]:
    """Seed an L3 store from one oracle pass, then reproduce the frozen
    file through a fresh (cold) L1 backed by that (warm) L3."""
    with open(ORACLE_PATH) as handle:
        frozen = handle.read()
    scratch = tempfile.mkdtemp(prefix="bench-cache-oracle-")
    try:
        store = DiskArtifactStore(os.path.join(scratch, "l3"))

        seed_cache = SubtreeArtifactCache()
        seed_cache.attach_l3(store)
        seed_out = _oracle_payload(seed_cache)
        seed_cache.flush_l3()
        seed_identical = json.dumps(seed_out, sort_keys=True,
                                    indent=1) == frozen

        warm_cache = SubtreeArtifactCache()  # cold L1 ...
        warm_cache.attach_l3(store)          # ... warm L3
        warm_out = _oracle_payload(warm_cache)
        warm_identical = json.dumps(warm_out, sort_keys=True,
                                    indent=1) == frozen
        _l2, l3_hits = warm_cache.tier_counts()
        return {
            "entries": len(warm_out),
            "seed_byte_identical": seed_identical,
            "warm_byte_identical": warm_identical,
            "warm_l3_hits": l3_hits,
            "disk_entries": store.stats()["total_entries"],
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="Bert-S",
                        choices=sorted(ATTENTION_SHAPES),
                        help="attention shape driving both timed arms")
    parser.add_argument("--samples", type=int, default=120,
                        help="MCTS samples per genome in the warm-start arm")
    parser.add_argument("--repeats", type=int, default=2,
                        help="interleaved cold/warm rounds")
    parser.add_argument("--warm-bound", type=int, default=32768,
                        help="L1 bound in the warm-start arm (large enough "
                             "that eviction does not bleed the flush)")
    parser.add_argument("--bound", type=int, default=8192,
                        help="L1 bound in the eviction arm (the default "
                             "production bound)")
    parser.add_argument("--sweep-trees", type=int, default=300,
                        help="distinct mappings in the cyclic sweep")
    parser.add_argument("--sweep-rounds", type=int, default=4,
                        help="times each mapping is re-evaluated")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required cold/warm L3 warm-start speedup")
    parser.add_argument("--out", default="BENCH_cache.json")
    args = parser.parse_args(argv)

    print("[bench] L3 warm-start on a repeated search ...", flush=True)
    warm_start = warm_start_arm(args)

    print("[bench] eviction policies under the cyclic sweep ...", flush=True)
    eviction = eviction_arm(args)

    print("[bench] frozen oracle through cold L1 + warm L3 ...", flush=True)
    oracle = oracle_through_tiers()
    print(f"[bench] oracle: seed identical "
          f"{oracle['seed_byte_identical']}, warm identical "
          f"{oracle['warm_byte_identical']}, warm L3 hits "
          f"{oracle['warm_l3_hits']}", flush=True)

    report = {
        "benchmark": "tiered_artifact_store",
        "params": {
            "workload": args.workload, "samples": args.samples,
            "repeats": args.repeats, "warm_bound": args.warm_bound,
            "bound": args.bound, "sweep_trees": args.sweep_trees,
            "sweep_rounds": args.sweep_rounds, "seed": args.seed,
            "min_speedup": args.min_speedup,
        },
        "cpu_count": os.cpu_count(),
        "warm_start": warm_start,
        "eviction_policy": eviction,
        "oracle": oracle,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.out}")

    failures = []
    if warm_start["speedup"] < args.min_speedup:
        failures.append(f"L3 warm-start speedup {warm_start['speedup']:.2f}x "
                        f"< {args.min_speedup:.2f}x floor")
    if not warm_start["champions_identical"]:
        failures.append("champions differ between cold and L3-warm runs")
    if not warm_start["warm_l3_hits"]:
        failures.append("warm search never hit the L3 tier")
    if not eviction["protected_evictions_reduced"]:
        failures.append(
            f"protected-kind evictions not reduced: insertion "
            f"{eviction['insertion']['protected_evictions']} vs segmented "
            f"{eviction['segmented']['protected_evictions']}")
    if not eviction["results_identical"]:
        failures.append("sweep results differ between eviction policies")
    if not (oracle["seed_byte_identical"] and oracle["warm_byte_identical"]):
        failures.append("oracle output differs through the cache tiers")
    if not oracle["warm_l3_hits"]:
        failures.append("oracle warm pass never hit the L3 tier")
    for failure in failures:
        print(f"[bench] ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
