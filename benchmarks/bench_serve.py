#!/usr/bin/env python
"""Evaluation-service benchmark: warm-cache job latency and throughput.

Boots a real :class:`~repro.serve.EvaluationService` behind its HTTP
front-end and measures what keeping engines (and the shared subtree
artifact cache) resident buys:

* **cold vs warm evaluate latency** — the same evaluate job submitted
  twice; the second runs entirely on the first job's subtree artifacts.
  Reported as end-to-end job wall time (the service's own measurement,
  excluding HTTP/queue overhead) plus the subtree hit/miss counters of
  each job.  The acceptance bar is warm strictly faster with nonzero
  warm-cache hits (``--min-speedup``, default 1.2).
* **N-job throughput** — ``--jobs`` evaluate jobs across the registry
  dataflows through ``--workers`` worker threads, jobs/second.
* **/stats visibility** — the shared cache's hit total as reported by
  ``GET /stats`` (must be nonzero after the warm run).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py

Emits ``BENCH_serve.json``.  Exits non-zero if the warm job is not
faster than the cold one by ``--min-speedup`` or records zero
subtree-cache hits.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import threading
import time
from typing import Any, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dataflows import dataflow_names  # noqa: E402
from repro.serve import (EvaluationService, ServiceClient,  # noqa: E402
                         make_server)
from repro.workloads import by_name  # noqa: E402

WORKLOAD = "Bert-S"
ARCH = "edge"
DATAFLOW = "layerwise"


def boot(workers: int):
    service = EvaluationService(workers=workers).start()
    httpd = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{httpd.server_address[1]}")
    return service, httpd, client


def shutdown(service, httpd) -> None:
    httpd.shutdown()
    httpd.server_close()
    service.stop(timeout=10)


def run_job(client: ServiceClient, spec: Dict[str, Any]) -> Dict[str, Any]:
    job = client.submit("evaluate", spec)
    status = client.result(job["id"], timeout=120, poll_s=0.02)
    assert status["state"] == "done", status.get("error")
    return status["result"]


def cold_warm(args: argparse.Namespace) -> Dict[str, Any]:
    """Cold/warm latency of one evaluate job on a fresh service,
    repeated ``--repeats`` times (fresh service each round; min-time)."""
    spec = {"workload": WORKLOAD, "arch": ARCH, "dataflow": DATAFLOW}
    cold_s: List[float] = []
    warm_s: List[float] = []
    cold_counters = warm_counters = {}
    stats_hits = 0
    for _ in range(args.repeats):
        service, httpd, client = boot(workers=1)
        try:
            cold = run_job(client, spec)
            warm = run_job(client, spec)
            cold_s.append(cold["wall_s"])
            warm_s.append(warm["wall_s"])
            cold_counters = cold["counters"]
            warm_counters = warm["counters"]
            stats_hits = client.stats()["subtree_cache"]["hits"]
        finally:
            shutdown(service, httpd)
    return {
        "workload": WORKLOAD, "arch": ARCH, "dataflow": DATAFLOW,
        "repeats": args.repeats,
        "cold_s": min(cold_s), "warm_s": min(warm_s),
        "speedup": min(cold_s) / min(warm_s),
        "cold_median_s": statistics.median(cold_s),
        "warm_median_s": statistics.median(warm_s),
        "cold_subtree": {"hits": cold_counters.get("subtree_hits", 0),
                         "misses": cold_counters.get("subtree_misses", 0)},
        "warm_subtree": {"hits": warm_counters.get("subtree_hits", 0),
                         "misses": warm_counters.get("subtree_misses", 0)},
        "stats_endpoint_hits": stats_hits,
    }


def throughput(args: argparse.Namespace) -> Dict[str, Any]:
    """Jobs/second for a burst of evaluate jobs over all dataflows."""
    names = list(dataflow_names(by_name(WORKLOAD)))
    service, httpd, client = boot(workers=args.workers)
    try:
        start = time.perf_counter()
        ids = [client.submit("evaluate",
                             {"workload": WORKLOAD, "arch": ARCH,
                              "dataflow": names[i % len(names)]})["id"]
               for i in range(args.jobs)]
        for jid in ids:
            status = client.result(jid, timeout=300, poll_s=0.02)
            assert status["state"] == "done", status.get("error")
        wall = time.perf_counter() - start
        stats = client.stats()
    finally:
        shutdown(service, httpd)
    return {
        "jobs": args.jobs, "workers": args.workers,
        "wall_s": wall, "jobs_per_s": args.jobs / wall,
        "subtree_hits": stats["subtree_cache"]["hits"],
        "subtree_hit_rate": (
            stats["subtree_cache"]["hits"]
            / max(1, stats["subtree_cache"]["hits"]
                  + stats["subtree_cache"]["misses"])),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="cold/warm rounds (min-time reported)")
    parser.add_argument("--jobs", type=int, default=24,
                        help="throughput burst size")
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker threads for throughput")
    parser.add_argument("--min-speedup", type=float, default=1.2,
                        help="required cold/warm job speedup")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()

    print(f"== cold vs warm evaluate job ({WORKLOAD}/{ARCH}/{DATAFLOW}, "
          f"{args.repeats} rounds) ==")
    cw = cold_warm(args)
    print(f"cold {cw['cold_s'] * 1e3:8.3f}ms  "
          f"warm {cw['warm_s'] * 1e3:8.3f}ms  "
          f"speedup {cw['speedup']:.2f}x")
    print(f"cold subtree hit/miss: {cw['cold_subtree']['hits']}/"
          f"{cw['cold_subtree']['misses']}   warm: "
          f"{cw['warm_subtree']['hits']}/{cw['warm_subtree']['misses']}")
    print(f"GET /stats cache hits: {cw['stats_endpoint_hits']}")

    print(f"\n== throughput ({args.jobs} jobs, {args.workers} workers) ==")
    tp = throughput(args)
    print(f"{tp['wall_s']:.2f}s total, {tp['jobs_per_s']:.1f} jobs/s, "
          f"subtree hit rate {tp['subtree_hit_rate']:.1%}")

    payload = {"cold_warm": cw, "throughput": tp,
               "min_speedup": args.min_speedup}
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.output}")

    failures = []
    if cw["speedup"] < args.min_speedup:
        failures.append(f"warm speedup {cw['speedup']:.2f}x below the "
                        f"{args.min_speedup}x floor")
    if cw["warm_subtree"]["hits"] <= 0:
        failures.append("warm job recorded no subtree-cache hits")
    if cw["stats_endpoint_hits"] <= 0:
        failures.append("GET /stats reports zero cache hits")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
