"""Fig. 8: model validation (cycle/energy correlation and errors)."""

from conftest import print_block

from repro.experiments.validation import (format_validation,
                                          validate_against_accelerator,
                                          validate_against_polyhedron)


def test_fig08_validation(benchmark):
    poly = benchmark(validate_against_polyhedron, limit=1152)
    accel = validate_against_accelerator(limit=131)
    print_block(format_validation(poly, accel))
    assert poly.cycle_r2() > 0.98          # paper: 0.999
    assert poly.cycle_error() < 0.10
    assert accel.count >= 120
