#!/usr/bin/env python
"""Incremental-analysis benchmark: the persistent subtree cache.

Measures what the incremental evaluation layer (the
``SubtreeArtifactCache`` shared across ``EvaluationEngine`` calls) buys
during search, and proves it changes nothing but the wall clock:

* **MCTS factor search** — the headline number.  Three random genomes
  are each tuned with the engine's MCTS tuner (``--samples`` samples,
  default 400) with the subtree cache on and off, interleaved over
  ``--repeats`` rounds after a discarded warm-up, compared on min-time.
  Deep UCT descents revisit per-group tile configurations constantly,
  which is exactly what the group-flows cache layer serves.  The PR's
  acceptance bar is a >= 2x speedup here.
* **GA+MCTS mapper search** — end-to-end ``TileFlowMapper.explore`` with
  the cache on and off; the search trajectory (champion, factors, and
  the per-generation cost trace) must be identical in both configs.
* **Frozen-oracle identity** — every entry of
  ``tests/data/analysis_oracle.json`` (58 ``EvaluationResult.to_dict()``
  payloads frozen from the pre-refactor monolith) is recomputed through
  a *single shared* ``SubtreeArtifactCache``, so later entries are
  served from artifacts cached by earlier ones.  The serialized output
  must reproduce the frozen file byte-for-byte.

Champions are compared byte-exactly (``==`` on the full result tuples),
not approximately: the incremental layer only caches integer recursion
results and replays float contributions in their original accumulation
order, so cached and uncached runs are bit-identical by construction.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_incremental.py

Emits ``BENCH_incremental.json``.  Exits non-zero if the speedup floor
(``--min-speedup``, default 2.0) is missed or any identity check fails.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import arch as arch_mod  # noqa: E402
from repro import workloads  # noqa: E402
from repro.engine import EvaluationEngine  # noqa: E402
from repro.engine.cache import SubtreeArtifactCache  # noqa: E402
from repro.mapper import Genome, TileFlowMapper  # noqa: E402

ORACLE_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "tests",
                           "data", "analysis_oracle.json")


def mcts_run(args: argparse.Namespace, incremental: bool
             ) -> Tuple[float, List, Dict]:
    """One timed round: tune three fixed random genomes with MCTS."""
    workload = workloads.self_attention(args.heads, args.seq, args.hidden,
                                        expand_softmax=True)
    engine = EvaluationEngine(workload, arch_mod.edge(),
                              incremental=incremental)
    rng = random.Random(args.seed)
    genomes = [Genome.random(workload, rng) for _ in range(3)]
    start = time.perf_counter()
    champions = [engine.tune_genome(g, seed=100 + i, samples=args.samples)
                 for i, g in enumerate(genomes)]
    seconds = time.perf_counter() - start
    stats = {"engine": engine.stats.to_dict()}
    if engine.subtree_cache is not None:
        stats["subtree_cache"] = engine.subtree_cache.stats()
    engine.shutdown()
    return seconds, champions, stats


def mapper_run(args: argparse.Namespace, incremental: bool
               ) -> Tuple[float, Tuple]:
    """One timed round: full GA+MCTS exploration."""
    workload = workloads.self_attention(args.heads, args.seq, args.hidden,
                                        expand_softmax=True)
    mapper = TileFlowMapper(workload, arch_mod.edge(), seed=args.seed,
                            incremental=incremental)
    start = time.perf_counter()
    result = mapper.explore(generations=args.generations,
                            population=args.population,
                            mcts_samples=args.mapper_samples)
    seconds = time.perf_counter() - start
    trajectory = (result.best_cost, result.best_factors, tuple(result.trace))
    return seconds, trajectory


def oracle_through_shared_cache() -> Dict[str, object]:
    """Recompute the frozen oracle with one persistent subtree cache.

    Same entry recipe as ``tests/property/test_prop_pipeline.py``
    (inlined — the bench jobs run without the test dependencies), but
    every evaluation's context carries the *same*
    ``SubtreeArtifactCache``, so entries are incrementally served from
    each other's artifacts.  The serialized output must still match the
    frozen pre-refactor file byte-for-byte.
    """
    from repro.analysis import TileFlowModel
    from repro.dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                                 attention_dataflow, conv_dataflow)
    from repro.mapper import build_genome_tree, genome_factor_space
    from repro.workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                                 attention_from_shape, conv_chain_from_shape,
                                 self_attention)

    cache = SubtreeArtifactCache()

    def evaluate(model, tree):
        ctx = model.context(tree, artifact_cache=cache)
        return model.evaluate(tree, context=ctx)

    out = {}
    for shape in ("Bert-S", "ViT/16-B"):
        wl = attention_from_shape(ATTENTION_SHAPES[shape])
        for aname, spec in (("edge", arch_mod.edge()),
                            ("cloud", arch_mod.cloud())):
            model = TileFlowModel(spec)
            for df in ATTENTION_DATAFLOWS:
                r = evaluate(model, attention_dataflow(df, wl, spec))
                out[f"attn/{shape}/{aname}/{df}"] = r.to_dict()
    wl = conv_chain_from_shape(CONV_CHAIN_SHAPES["CC1"])
    spec = arch_mod.edge()
    model = TileFlowModel(spec)
    for df in CONV_DATAFLOWS:
        r = evaluate(model, conv_dataflow(df, wl, spec))
        out[f"conv/CC1/edge/{df}"] = r.to_dict()
    wl = self_attention(2, 32, 64, expand_softmax=False)
    model = TileFlowModel(spec)
    rng = random.Random(1234)
    for i in range(30):
        genome = Genome.random(wl, rng)
        factors = genome_factor_space(wl, genome).random_point(rng)
        tree = build_genome_tree(wl, spec, genome, factors)
        out[f"genome/{i}"] = evaluate(model, tree).to_dict()

    current = json.dumps(out, sort_keys=True, indent=1)
    with open(ORACLE_PATH) as handle:
        frozen = handle.read()
    return {
        "entries": len(out),
        "byte_identical": current == frozen,
        "cache_stats": cache.stats(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=400,
                        help="MCTS samples per genome in the timed section")
    parser.add_argument("--repeats", type=int, default=2,
                        help="interleaved timed rounds per config")
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument("--population", type=int, default=10)
    parser.add_argument("--mapper-samples", type=int, default=40,
                        help="MCTS samples per genome in the mapper section")
    parser.add_argument("--heads", type=int, default=2)
    parser.add_argument("--seq", type=int, default=32)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required MCTS speedup (incremental over not)")
    parser.add_argument("--out", default="BENCH_incremental.json")
    args = parser.parse_args(argv)

    # -- MCTS factor search (the headline) ---------------------------------
    print("[bench] warm-up round (discarded) ...", flush=True)
    mcts_run(args, incremental=False)
    mcts_run(args, incremental=True)

    times: Dict[str, List[float]] = {"off": [], "on": []}
    champions: Dict[str, List] = {}
    stats: Dict[str, Dict] = {}
    for round_no in range(args.repeats):
        for name, incremental in (("off", False), ("on", True)):
            seconds, champs, st = mcts_run(args, incremental)
            times[name].append(seconds)
            champions[name] = champs
            stats[name] = st
            print(f"[bench] round {round_no + 1}/{args.repeats} "
                  f"incremental={name}: {seconds:.3f}s", flush=True)
    mcts_off, mcts_on = min(times["off"]), min(times["on"])
    mcts_speedup = mcts_off / mcts_on
    mcts_identical = champions["off"] == champions["on"]
    print(f"[bench] MCTS: off {mcts_off:.3f}s on {mcts_on:.3f}s "
          f"-> {mcts_speedup:.2f}x, champions identical: {mcts_identical}",
          flush=True)

    # -- full mapper search ------------------------------------------------
    mapper_run(args, incremental=False)  # warm-up, discarded
    mapper_run(args, incremental=True)
    m_off, traj_off = mapper_run(args, incremental=False)
    m_on, traj_on = mapper_run(args, incremental=True)
    mapper_speedup = m_off / m_on
    mapper_identical = traj_off == traj_on
    print(f"[bench] mapper: off {m_off:.3f}s on {m_on:.3f}s "
          f"-> {mapper_speedup:.2f}x, trajectories identical: "
          f"{mapper_identical}", flush=True)

    # -- oracle byte-identity through the shared cache ---------------------
    print("[bench] frozen oracle through one shared cache ...", flush=True)
    oracle = oracle_through_shared_cache()
    print(f"[bench] oracle byte-identical: {oracle['byte_identical']}",
          flush=True)

    report = {
        "benchmark": "incremental_analysis",
        "params": {
            "samples": args.samples, "repeats": args.repeats,
            "generations": args.generations, "population": args.population,
            "mapper_samples": args.mapper_samples,
            "workload": f"attention(h={args.heads}, s={args.seq}, "
                        f"d={args.hidden}, expand_softmax=True)",
            "seed": args.seed, "min_speedup": args.min_speedup,
        },
        "cpu_count": os.cpu_count(),
        "mcts_search": {
            "seconds_off": times["off"], "seconds_on": times["on"],
            "min_seconds_off": mcts_off, "min_seconds_on": mcts_on,
            "speedup": mcts_speedup,
            "champions_identical": mcts_identical,
            "engine_stats_on": stats["on"]["engine"],
            "subtree_cache_stats": stats["on"].get("subtree_cache"),
        },
        "mapper_search": {
            "seconds_off": m_off, "seconds_on": m_on,
            "speedup": mapper_speedup,
            "trajectories_identical": mapper_identical,
        },
        "oracle": oracle,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.out}")

    failures = []
    if mcts_speedup < args.min_speedup:
        failures.append(f"MCTS speedup {mcts_speedup:.2f}x < "
                        f"{args.min_speedup:.2f}x floor")
    if not mcts_identical:
        failures.append("MCTS champions differ with incremental on")
    if not mapper_identical:
        failures.append("mapper trajectories differ with incremental on")
    if not oracle["byte_identical"]:
        failures.append("oracle output differs through the shared cache")
    for failure in failures:
        print(f"[bench] ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
