#!/usr/bin/env python
"""Pipeline benchmark: context sharing + partial evaluation vs monolith.

Measures what the pass-pipeline refactor buys during mapper search.
The same GA+MCTS exploration (fixed seed) runs under three engine
configs:

* ``pre_refactor``   — simulates the monolithic model: the feasibility
  pre-screen and the full evaluation each recompute validation and
  slice geometry from scratch (no shared ``AnalysisContext``), and
  every analysed candidate runs the complete pass pipeline.
* ``shared_context`` — the pipeline refactor without partial stops
  (``EvaluationEngine(partial=False)``): the pre-screen's validate +
  slices prefix is reused when the pipeline resumes for the full run.
* ``partial``        — the engine defaults: context sharing plus the
  partial-evaluation fast path (stop after the latency pass — the
  latency objective never reads energy — and stop at the resource pass
  for infeasible candidates).

Configs are interleaved over ``--repeats`` rounds and compared on
min-time.  A second section microbenchmarks the pipeline's stopping
points on a fixed mapping (full, ``until="latency"``,
``stop_on_violation`` on an infeasible mapping, and the pre-screen
prefix, which skips the dominant data-movement pass entirely).

A determinism check asserts all three search configs produce
byte-identical ``MapperResult.to_dict()`` output (the champion is
always re-evaluated with the full pipeline).  Emits
``BENCH_pipeline.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_pipeline.py

Not a pytest bench: this measures the search loop itself, not a paper
figure, so it lives beside the harness rather than in it.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import arch as arch_mod  # noqa: E402
from repro import obs  # noqa: E402
from repro import workloads  # noqa: E402
from repro.analysis import PRESCREEN_PIPELINE, TileFlowModel  # noqa: E402
from repro.dataflows import attention_dataflow  # noqa: E402
from repro.engine import EvaluationEngine  # noqa: E402
from repro.mapper import TileFlowMapper  # noqa: E402


class _UnsharedModel(TileFlowModel):
    """Pre-refactor cost model: every call starts from a fresh context.

    Dropping the ``context`` kwarg severs the pre-screen -> evaluation
    reuse, so validation and slice geometry are recomputed exactly like
    the monolithic ``evaluate`` did before the pipeline refactor.
    Results are identical — only the repeated work returns.
    """

    def evaluate(self, tree, *args, **kwargs):
        kwargs.pop("context", None)
        return super().evaluate(tree, *args, **kwargs)


def run_search(args: argparse.Namespace, *, partial: bool,
               unshared: bool = False) -> Dict[str, object]:
    workload = workloads.self_attention(args.heads, args.seq, args.hidden,
                                        expand_softmax=False)
    spec = arch_mod.edge()
    engine = EvaluationEngine(workload, spec, respect_memory=True,
                              workers=1, partial=partial)
    if unshared:
        engine.model = _UnsharedModel(spec)
    mapper = TileFlowMapper(workload, spec, respect_memory=True,
                            seed=args.seed, engine=engine)
    start = time.perf_counter()
    try:
        result = mapper.explore(generations=args.generations,
                                population=args.population,
                                mcts_samples=args.samples)
    finally:
        engine.shutdown()
    seconds = time.perf_counter() - start
    return {"seconds": seconds, "stats": engine.stats.to_dict(),
            "best_cost": (None if result.best_cost == float("inf")
                          else result.best_cost),
            "to_dict": result.to_dict()}


def microbench(args: argparse.Namespace) -> Dict[str, object]:
    """Per-call cost of each pipeline stopping point on fixed mappings."""
    workload = workloads.self_attention(args.heads, args.seq, args.hidden,
                                        expand_softmax=False)
    feasible_spec = arch_mod.edge()
    cramped_spec = arch_mod.edge().with_level("L1", capacity_bytes=1024)
    model = TileFlowModel(feasible_spec)
    cramped = TileFlowModel(cramped_spec)
    feasible_tree = attention_dataflow("flat_rgran", workload, feasible_spec)
    cramped_tree = attention_dataflow("flat_rgran", workload, cramped_spec)

    def prescreen_then_full_shared():
        ctx = model.context(feasible_tree)
        PRESCREEN_PIPELINE.run(ctx)
        model.evaluate(feasible_tree, context=ctx)

    def prescreen_then_full_unshared():
        PRESCREEN_PIPELINE.run(model.context(feasible_tree))
        model.evaluate(feasible_tree)

    timed = {
        "full_pipeline_s": lambda: model.evaluate(feasible_tree),
        "until_latency_s": lambda: model.evaluate(feasible_tree,
                                                  until="latency"),
        "full_infeasible_s": lambda: cramped.evaluate(cramped_tree),
        "stop_on_violation_infeasible_s": lambda: cramped.evaluate(
            cramped_tree, stop_on_violation=True),
        "prescreen_prefix_s": lambda: PRESCREEN_PIPELINE.run(
            model.context(feasible_tree)),
        "prescreen_then_full_shared_s": prescreen_then_full_shared,
        "prescreen_then_full_unshared_s": prescreen_then_full_unshared,
    }
    # Round-robin the measurements so allocator warm-up and other
    # monotonic drift spread evenly across the variants; GC pauses are
    # kept out of the timed region.
    best = {name: float("inf") for name in timed}
    for _ in range(2):  # warm up
        for fn in timed.values():
            fn()
    gc.collect()
    gc.disable()
    try:
        for _ in range(30):
            for name, fn in timed.items():
                t0 = time.perf_counter()
                fn()
                best[name] = min(best[name], time.perf_counter() - t0)
                gc.collect()
    finally:
        gc.enable()
    out = dict(best)
    # Each ratio compares stopping points on the *same* tree/model.
    out["speedups"] = {
        "until_latency_over_full":
            best["full_pipeline_s"] / best["until_latency_s"],
        "stop_on_violation_over_full_infeasible":
            best["full_infeasible_s"] / best["stop_on_violation_infeasible_s"],
        "prescreen_prefix_over_full":
            best["full_pipeline_s"] / best["prescreen_prefix_s"],
        "shared_context_over_unshared":
            best["prescreen_then_full_unshared_s"]
            / best["prescreen_then_full_shared_s"],
    }
    return out


def pass_self_times(repeats: int = 40) -> Dict[str, object]:
    """Per-pass self-time profile of the full pipeline (CI drift guard).

    Runs the complete pipeline ``repeats`` times over a fixed mapping
    under the obs tracer and aggregates the ``model.pass.*`` spans into
    self-time *shares* of the total pass time.  Shares, not absolute
    seconds, are what ``benchmarks/check_pass_drift.py`` compares across
    machines: a pass whose share of the pipeline grows >1.5x signals an
    accidental hot-path regression in that analysis even when the whole
    run merely got uniformly slower or faster.

    The workload/mapping here is fixed (independent of the search CLI
    flags) so baseline and CI runs profile the same work.
    """
    workload = workloads.self_attention(4, 512, 256, expand_softmax=False)
    spec = arch_mod.edge()
    model = TileFlowModel(spec)
    tree = attention_dataflow("flat_rgran", workload, spec)
    model.evaluate(tree)  # warm-up outside the traced region
    tracer = obs.enable()
    try:
        for _ in range(repeats):
            model.evaluate(tree)
    finally:
        obs.disable()
    stats = [s for s in obs.aggregate_spans(tracer.spans)
             if s.name.startswith("model.pass.")]
    total_self = sum(s.self_s for s in stats) or 1.0
    return {
        "repeats": repeats,
        "passes": {
            s.name[len("model.pass."):]: {
                "count": s.count,
                "total_s": s.total_s,
                "self_s": s.self_s,
                "share": s.self_s / total_self,
            } for s in stats},
    }


CONFIGS = (
    ("pre_refactor", dict(partial=False, unshared=True)),
    ("shared_context", dict(partial=False)),
    ("partial", dict(partial=True)),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--generations", type=int, default=12)
    parser.add_argument("--population", type=int, default=12)
    parser.add_argument("--samples", type=int, default=20,
                        help="MCTS samples per genome tune")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved rounds per search config")
    parser.add_argument("--heads", type=int, default=4)
    parser.add_argument("--seq", type=int, default=512)
    parser.add_argument("--hidden", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_pipeline.json")
    args = parser.parse_args(argv)

    times: Dict[str, List[float]] = {name: [] for name, _ in CONFIGS}
    last: Dict[str, Dict[str, object]] = {}
    for round_no in range(args.repeats):
        for name, kwargs in CONFIGS:
            run = run_search(args, **kwargs)
            times[name].append(run["seconds"])
            last[name] = run
            print(f"[bench] round {round_no + 1}/{args.repeats} "
                  f"{name}: {run['seconds']:.3f}s, "
                  f"{run['stats']['evaluations']} evaluations, "
                  f"{run['stats']['early_exits']} early exits", flush=True)

    baseline = min(times["pre_refactor"])
    dicts = {name: json.dumps(last[name].pop("to_dict"), sort_keys=True)
             for name, _ in CONFIGS}
    identical = len(set(dicts.values())) == 1

    print("[bench] model microbenchmark ...", flush=True)
    micro = microbench(args)

    print("[bench] per-pass self-time profile ...", flush=True)
    passes = pass_self_times()

    report = {
        "benchmark": "pipeline_partial_evaluation",
        "params": {"generations": args.generations,
                   "population": args.population,
                   "mcts_samples": args.samples,
                   "repeats": args.repeats,
                   "workload": f"attention(h={args.heads}, s={args.seq}, "
                               f"d={args.hidden})",
                   "seed": args.seed},
        "cpu_count": os.cpu_count(),
        "search": {
            name: {"seconds": times[name], "min_seconds": min(times[name]),
                   "engine_stats": last[name]["stats"],
                   "best_cost": last[name]["best_cost"]}
            for name, _ in CONFIGS},
        "search_speedup_over_pre_refactor": {
            name: baseline / min(times[name]) if times[name] else 0.0
            for name, _ in CONFIGS},
        "model_microbench": micro,
        "pass_self_times": passes,
        "determinism": {"all_configs_to_dict_identical": identical},
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.out}")
    for name, _ in CONFIGS:
        speedup = report["search_speedup_over_pre_refactor"][name]
        print(f"[bench] {name}: min {min(times[name]):.3f}s "
              f"({speedup:.3f}x over pre_refactor)")
    print("[bench] microbench speedups: "
          + ", ".join(f"{k}={v:.2f}x"
                      for k, v in micro["speedups"].items()))
    print("[bench] pass self-time shares: "
          + ", ".join(f"{name}={entry['share']:.0%}"
                      for name, entry in sorted(
                          passes["passes"].items(),
                          key=lambda kv: -kv[1]["share"])))
    if not identical:
        print("[bench] ERROR: search results differ across configs",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
