#!/usr/bin/env python
"""Mapper throughput benchmark: evaluation engine on vs off.

Runs the same GA+MCTS exploration (fixed seed) under three configs:

* ``serial_uncached`` — the pre-engine behavior: no memo cache, no
  feasibility pre-screen, survivors re-tuned every generation.
* ``serial_cached``   — the engine defaults: LRU memo cache, pre-screen,
  elite fitness carried forward.
* ``parallel_cached`` — ``serial_cached`` plus a worker pool
  (``--workers``, default 4).

Emits ``BENCH_mapper.json`` with wall times, engine-effectiveness
counters, speedups over the uncached baseline, and a determinism check
asserting the serial and parallel runs produce byte-identical
``MapperResult.to_dict()`` output (the contract in docs/PERFORMANCE.md).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_mapper_perf.py

Not a pytest bench: this measures the search loop itself, not a paper
figure, so it lives beside the harness rather than in it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import arch as arch_mod  # noqa: E402
from repro import workloads  # noqa: E402
from repro.engine import EvaluationEngine  # noqa: E402
from repro.mapper import TileFlowMapper  # noqa: E402


def run_config(name: str, args: argparse.Namespace, *, workers: int,
               cache_size: int, prescreen: bool,
               reuse_elites: bool) -> Dict[str, object]:
    workload = workloads.self_attention(args.heads, args.seq, args.hidden,
                                        expand_softmax=False)
    spec = arch_mod.edge()
    engine = EvaluationEngine(workload, spec, respect_memory=True,
                              workers=workers, cache_size=cache_size,
                              prescreen=prescreen)
    mapper = TileFlowMapper(workload, spec, respect_memory=True,
                            seed=args.seed, engine=engine)
    start = time.perf_counter()
    try:
        result = mapper.explore(generations=args.generations,
                                population=args.population,
                                mcts_samples=args.samples,
                                reuse_elites=reuse_elites)
    finally:
        engine.shutdown()
    seconds = time.perf_counter() - start
    stats = engine.stats
    evals = stats.evaluations
    if args.ledger:
        record_run(args, name, workload, spec, engine, result, seconds,
                   workers=workers)
    return {
        "name": name,
        "workers": workers,
        "cache_size": cache_size,
        "prescreen": prescreen,
        "reuse_elites": reuse_elites,
        "seconds": seconds,
        "best_cost": (None if result.best_cost == float("inf")
                      else result.best_cost),
        "engine_stats": stats.to_dict(),
        "cache_hit_rate": stats.hit_rate,
        "full_evaluations_per_second": evals / seconds if seconds else 0.0,
        "_to_dict": result.to_dict(),
    }


def record_run(args, name, workload, spec, engine, result, seconds, *,
               workers):
    """Drop a run-ledger manifest so bench runs can be `repro runs diff`ed."""
    from repro.engine.signature import (arch_fingerprint, digest,
                                        workload_fingerprint)
    from repro.obs import ledger as ledger_mod
    from repro.obs.events import jsonable_cost

    ledger = ledger_mod.RunLedger(args.ledger)
    run_id = ledger.new_run_id(salt=f"bench-{name}")
    path = ledger.record(ledger_mod.build_manifest(
        run_id=run_id, command="bench_mapper_perf",
        workload={"name": workload.name,
                  "fingerprint": digest(workload_fingerprint(workload))},
        arch={"name": spec.name,
              "fingerprint": digest(arch_fingerprint(spec))},
        config=dict(engine.config(), generations=args.generations,
                    population=args.population, samples=args.samples,
                    workers=workers, bench_config=name),
        seeds={"seed": args.seed},
        champion={
            "cost": jsonable_cost(result.best_cost),
            "signature": engine.mapping_digest(result.best_genome,
                                               result.best_factors),
            "genome": result.best_genome.describe(workload),
            "factors": dict(result.best_factors),
        },
        counters=engine.stats.to_dict(),
        wall_s=seconds,
        namespace=digest(engine._base)))
    print(f"[bench]   run recorded: {run_id} -> {path}", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--generations", type=int, default=12)
    parser.add_argument("--population", type=int, default=12)
    parser.add_argument("--samples", type=int, default=20,
                        help="MCTS samples per genome tune")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool width for the parallel_cached config")
    parser.add_argument("--heads", type=int, default=4)
    parser.add_argument("--seq", type=int, default=512)
    parser.add_argument("--hidden", type=int, default=256)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_mapper.json")
    parser.add_argument("--ledger", default=None, metavar="DIR",
                        help="record one run-ledger manifest per config "
                             "under DIR (compare with `repro runs diff`)")
    args = parser.parse_args(argv)

    configs = [
        ("serial_uncached",
         dict(workers=1, cache_size=0, prescreen=False, reuse_elites=False)),
        ("serial_cached",
         dict(workers=1, cache_size=4096, prescreen=True,
              reuse_elites=True)),
        ("parallel_cached",
         dict(workers=args.workers, cache_size=4096, prescreen=True,
              reuse_elites=True)),
    ]
    runs = []
    for name, kwargs in configs:
        print(f"[bench] {name} ...", flush=True)
        run = run_config(name, args, **kwargs)
        print(f"[bench]   {run['seconds']:.3f}s, "
              f"{run['engine_stats']['evaluations']} full evaluations, "
              f"hit rate {run['cache_hit_rate'] * 100:.1f}%", flush=True)
        runs.append(run)

    by_name = {run["name"]: run for run in runs}
    baseline = by_name["serial_uncached"]["seconds"]
    serial_dict = json.dumps(by_name["serial_cached"].pop("_to_dict"),
                             sort_keys=True)
    parallel_dict = json.dumps(by_name["parallel_cached"].pop("_to_dict"),
                               sort_keys=True)
    by_name["serial_uncached"].pop("_to_dict")

    report = {
        "benchmark": "mapper_perf",
        "params": {"generations": args.generations,
                   "population": args.population,
                   "mcts_samples": args.samples,
                   "workers": args.workers,
                   "workload": f"attention(h={args.heads}, s={args.seq}, "
                               f"d={args.hidden})",
                   "seed": args.seed},
        "cpu_count": os.cpu_count(),
        "configs": runs,
        "speedup_over_serial_uncached": {
            run["name"]: baseline / run["seconds"] if run["seconds"] else 0.0
            for run in runs},
        "determinism": {
            "serial_vs_parallel_to_dict_identical":
                serial_dict == parallel_dict,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.out}")
    speedup = report["speedup_over_serial_uncached"]["parallel_cached"]
    print(f"[bench] parallel_cached speedup over baseline: {speedup:.2f}x")
    if not report["determinism"]["serial_vs_parallel_to_dict_identical"]:
        print("[bench] ERROR: serial and parallel results differ",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
