"""Fig. 9: mapper exploration convergence traces."""

from conftest import print_block

from repro.experiments.exploration import (attention_space_workloads,
                                           conv_space_workloads,
                                           factor_tuning_trace,
                                           format_traces,
                                           space_exploration_trace)


def test_fig09a_factor_tuning(benchmark):
    traces = benchmark(factor_tuning_trace, "Bert-S", samples=40)
    print_block(format_traces(traces, "Figure 9a: factor tuning (Bert-S)"))
    assert all(t and t[-1] >= max(t[0], 1e-9) - 1e-9
               for t in traces.series.values())


def test_fig09b_attention_space(benchmark):
    workloads = attention_space_workloads(("Bert-S", "Bert-B", "ViT/14-B"))
    traces = benchmark(space_exploration_trace, workloads,
                       generations=4, population=6, mcts_samples=10)
    print_block(format_traces(traces, "Figure 9b: 3D-space tuning "
                                      "(self-attention)"))
    assert len(traces.series) == 3


def test_fig09c_conv_space(benchmark):
    workloads = conv_space_workloads(("CC3", "CC4"))
    traces = benchmark(space_exploration_trace, workloads,
                       generations=4, population=6, mcts_samples=10)
    print_block(format_traces(traces, "Figure 9c: 3D-space tuning "
                                      "(conv chains)"))
    assert len(traces.series) == 2
