"""Fig. 14: L1 bandwidth sensitivity of the conv dataflows on Edge."""

from conftest import print_block

from repro.experiments.sensitivity import (bandwidth_sensitivity,
                                           format_bandwidth_sweep)


def test_fig14_bandwidth(benchmark):
    def run():
        return [bandwidth_sensitivity(shape) for shape in ("CC1", "CC2")]

    sweeps = benchmark(run)
    for sweep in sweeps:
        print_block(format_bandwidth_sweep(sweep))
    # Paper shape: TileFlow demands far more L1 bandwidth than
    # Fused-Layer/ISOS (its pipeline keeps more PEs busy).
    cc1 = sweeps[0]
    tf = cc1.suitable_bandwidth("tileflow") or float("inf")
    fl = cc1.suitable_bandwidth("fused_layer") or float("inf")
    assert tf >= fl
