#!/usr/bin/env python
"""Batched-kernel benchmark: array-native cohort pricing during search.

Measures what the batched analysis layer (``repro.analysis.batched``)
buys on top of the PR 5 incremental-on baseline, and proves it changes
nothing but the wall clock:

* **Multi-start MCTS factor search** — the headline number.  Four fused
  two-group genomes (the first such genomes of a fixed random stream
  whose factor spaces fit ``FULL_SWEEP_LIMIT``) are each tuned with
  ``--restarts`` MCTS restarts of ``--samples`` samples on one
  persistent engine, batched off vs on, interleaved over ``--repeats``
  rounds after a discarded warm-up, compared on min-time.  Restarts
  re-explore the same factor space from fresh seeds; the batched layer
  prices whole sibling cohorts in single vectorized sweeps and serves
  every later restart from the priced space, while the scalar baseline
  keeps paying for each restart's fresh rollout tails.  The PR's
  acceptance bar is a >= 2x speedup here; every champion must be
  byte-identical.
* **GA+MCTS mapper search** — end-to-end ``TileFlowMapper.explore``
  with batching off and on; the search trajectory (champion, factors,
  per-generation cost trace) must be identical in both configs.
* **Frozen-oracle identity** — every entry of
  ``tests/data/analysis_oracle.json`` (58 ``EvaluationResult.to_dict()``
  payloads frozen from the pre-refactor monolith) is recomputed through
  batched-enabled ``EvaluationEngine`` instances sharing one
  ``SubtreeArtifactCache``; the serialized output must reproduce the
  frozen file byte-for-byte.

Champions are compared byte-exactly (``==`` on the full result tuples),
not approximately: the batched kernels do all slice/walk arithmetic in
exact int64 (overflow raises and falls back to the scalar path) and
replay float compositions in the scalar accumulation order, so batched
and scalar costs are bit-identical by construction — and every swept
structure class is additionally cross-checked against one real scalar
evaluation before its costs are trusted.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_batched.py

Emits ``BENCH_batched.json``.  Exits non-zero if the speedup floor
(``--min-speedup``, default 2.0) is missed, any identity check fails,
or the batched run priced no candidates (``batched_evaluations == 0``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import arch as arch_mod  # noqa: E402
from repro import workloads  # noqa: E402
from repro.engine import EvaluationEngine  # noqa: E402
from repro.engine.cache import SubtreeArtifactCache  # noqa: E402
from repro.mapper import Genome, TileFlowMapper  # noqa: E402
from repro.mapper.encoding import genome_factor_space  # noqa: E402

ORACLE_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "tests",
                           "data", "analysis_oracle.json")


def bench_genomes(workload, seed: int, count: int = 4,
                  max_space: int = 8192) -> List[Genome]:
    """The first ``count`` distinct two-group genomes of the stream
    whose factor spaces are small enough for whole-space sweeps."""
    rng = random.Random(seed)
    picked: List[Genome] = []
    seen = set()
    while len(picked) < count:
        genome = Genome.random(workload, rng)
        key = str(genome.encode())
        if key in seen:
            continue
        seen.add(key)
        if len(genome.groups(workload)) != 2:
            continue
        if genome_factor_space(workload, genome).size > max_space:
            continue
        picked.append(genome)
    return picked


def mcts_run(args: argparse.Namespace, batched: bool
             ) -> Tuple[float, List, Dict]:
    """One timed round: multi-start tune of the fixed genome set."""
    workload = workloads.self_attention(args.heads, args.seq, args.hidden,
                                        expand_softmax=True)
    genomes = bench_genomes(workload, args.seed)
    engine = EvaluationEngine(workload, arch_mod.edge(), batched=batched)
    start = time.perf_counter()
    champions = [engine.tune_genome(g, seed=100 + r, samples=args.samples)
                 for g in genomes for r in range(args.restarts)]
    seconds = time.perf_counter() - start
    stats = {"engine": engine.stats.to_dict()}
    engine.shutdown()
    return seconds, champions, stats


def mapper_run(args: argparse.Namespace, batched: bool
               ) -> Tuple[float, Tuple]:
    """One timed round: full GA+MCTS exploration."""
    workload = workloads.self_attention(args.heads, args.seq, args.hidden,
                                        expand_softmax=True)
    mapper = TileFlowMapper(workload, arch_mod.edge(), seed=args.seed,
                            batched=batched)
    start = time.perf_counter()
    result = mapper.explore(generations=args.generations,
                            population=args.population,
                            mcts_samples=args.mapper_samples)
    seconds = time.perf_counter() - start
    trajectory = (result.best_cost, result.best_factors, tuple(result.trace))
    return seconds, trajectory


def oracle_through_batched_engines() -> Dict[str, object]:
    """Recompute the frozen oracle through batched-enabled engines.

    Same entry recipe as ``bench_incremental.py``, but every tree is
    evaluated by an ``EvaluationEngine(batched=True)`` (one per
    workload/arch pair, all sharing one ``SubtreeArtifactCache``) —
    proving the batched layer leaves the engine's evaluation results
    untouched.  The serialized output must match the frozen
    pre-refactor file byte-for-byte.
    """
    from repro.dataflows import (ATTENTION_DATAFLOWS, CONV_DATAFLOWS,
                                 attention_dataflow, conv_dataflow)
    from repro.mapper import build_genome_tree
    from repro.workloads import (ATTENTION_SHAPES, CONV_CHAIN_SHAPES,
                                 attention_from_shape, conv_chain_from_shape,
                                 self_attention)

    cache = SubtreeArtifactCache()
    engines: Dict[Tuple[str, str], EvaluationEngine] = {}

    def engine_for(wl, spec) -> EvaluationEngine:
        key = (wl.name, spec.name)
        if key not in engines:
            engines[key] = EvaluationEngine(wl, spec, batched=True,
                                            subtree_cache=cache)
        return engines[key]

    out = {}
    for shape in ("Bert-S", "ViT/16-B"):
        wl = attention_from_shape(ATTENTION_SHAPES[shape])
        for aname, spec in (("edge", arch_mod.edge()),
                            ("cloud", arch_mod.cloud())):
            engine = engine_for(wl, spec)
            for df in ATTENTION_DATAFLOWS:
                r = engine.evaluate_tree(attention_dataflow(df, wl, spec))
                out[f"attn/{shape}/{aname}/{df}"] = r.to_dict()
    wl = conv_chain_from_shape(CONV_CHAIN_SHAPES["CC1"])
    spec = arch_mod.edge()
    engine = engine_for(wl, spec)
    for df in CONV_DATAFLOWS:
        r = engine.evaluate_tree(conv_dataflow(df, wl, spec))
        out[f"conv/CC1/edge/{df}"] = r.to_dict()
    wl = self_attention(2, 32, 64, expand_softmax=False)
    engine = engine_for(wl, spec)
    rng = random.Random(1234)
    for i in range(30):
        genome = Genome.random(wl, rng)
        factors = genome_factor_space(wl, genome).random_point(rng)
        tree = build_genome_tree(wl, spec, genome, factors)
        out[f"genome/{i}"] = engine.evaluate_tree(tree).to_dict()
    for engine in engines.values():
        engine.shutdown()

    current = json.dumps(out, sort_keys=True, indent=1)
    with open(ORACLE_PATH) as handle:
        frozen = handle.read()
    return {
        "entries": len(out),
        "byte_identical": current == frozen,
        "cache_stats": cache.stats(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=1600,
                        help="MCTS samples per restart in the timed section")
    parser.add_argument("--restarts", type=int, default=4,
                        help="MCTS restarts (seeds) per genome")
    parser.add_argument("--repeats", type=int, default=2,
                        help="interleaved timed rounds per config")
    parser.add_argument("--generations", type=int, default=3)
    parser.add_argument("--population", type=int, default=6)
    parser.add_argument("--mapper-samples", type=int, default=1200,
                        help="MCTS samples per genome in the mapper "
                             "section (above BATCH_MIN_SAMPLES so the GA "
                             "fitness path really exercises the sweeps)")
    parser.add_argument("--heads", type=int, default=2)
    parser.add_argument("--seq", type=int, default=32)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required MCTS speedup (batched over scalar)")
    parser.add_argument("--out", default="BENCH_batched.json")
    args = parser.parse_args(argv)

    # -- multi-start MCTS factor search (the headline) ---------------------
    print("[bench] warm-up round (discarded) ...", flush=True)
    mcts_run(args, batched=False)
    mcts_run(args, batched=True)

    times: Dict[str, List[float]] = {"off": [], "on": []}
    champions: Dict[str, List] = {}
    stats: Dict[str, Dict] = {}
    for round_no in range(args.repeats):
        for name, batched in (("off", False), ("on", True)):
            seconds, champs, st = mcts_run(args, batched)
            times[name].append(seconds)
            champions[name] = champs
            stats[name] = st
            print(f"[bench] round {round_no + 1}/{args.repeats} "
                  f"batched={name}: {seconds:.3f}s", flush=True)
    mcts_off, mcts_on = min(times["off"]), min(times["on"])
    mcts_speedup = mcts_off / mcts_on
    mcts_identical = champions["off"] == champions["on"]
    engine_on = stats["on"]["engine"]
    batched_evaluations = engine_on.get("batched_evaluations", 0)
    print(f"[bench] MCTS: off {mcts_off:.3f}s on {mcts_on:.3f}s "
          f"-> {mcts_speedup:.2f}x, champions identical: {mcts_identical}, "
          f"{batched_evaluations} batched evaluations", flush=True)

    # -- full mapper search ------------------------------------------------
    mapper_run(args, batched=False)  # warm-up, discarded
    mapper_run(args, batched=True)
    m_off, traj_off = mapper_run(args, batched=False)
    m_on, traj_on = mapper_run(args, batched=True)
    mapper_identical = traj_off == traj_on
    print(f"[bench] mapper: off {m_off:.3f}s on {m_on:.3f}s, "
          f"trajectories identical: {mapper_identical}", flush=True)

    # -- oracle byte-identity through batched engines ----------------------
    print("[bench] frozen oracle through batched engines ...", flush=True)
    oracle = oracle_through_batched_engines()
    print(f"[bench] oracle byte-identical: {oracle['byte_identical']}",
          flush=True)

    report = {
        "benchmark": "batched_kernels",
        "params": {
            "samples": args.samples, "restarts": args.restarts,
            "repeats": args.repeats,
            "generations": args.generations, "population": args.population,
            "mapper_samples": args.mapper_samples,
            "workload": f"attention(h={args.heads}, s={args.seq}, "
                        f"d={args.hidden}, expand_softmax=True)",
            "seed": args.seed, "min_speedup": args.min_speedup,
        },
        "cpu_count": os.cpu_count(),
        "mcts_search": {
            "seconds_off": times["off"], "seconds_on": times["on"],
            "min_seconds_off": mcts_off, "min_seconds_on": mcts_on,
            "speedup": mcts_speedup,
            "champions_identical": mcts_identical,
            "engine_stats_off": stats["off"]["engine"],
            "engine_stats_on": engine_on,
        },
        "mapper_search": {
            "seconds_off": m_off, "seconds_on": m_on,
            "trajectories_identical": mapper_identical,
        },
        "oracle": oracle,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.out}")

    failures = []
    if mcts_speedup < args.min_speedup:
        failures.append(f"MCTS speedup {mcts_speedup:.2f}x < "
                        f"{args.min_speedup:.2f}x floor")
    if not mcts_identical:
        failures.append("MCTS champions differ with batching on")
    if batched_evaluations <= 0:
        failures.append("batched layer priced no candidates "
                        "(batched_evaluations == 0)")
    if not mapper_identical:
        failures.append("mapper trajectories differ with batching on")
    if not oracle["byte_identical"]:
        failures.append("oracle output differs through batched engines")
    for failure in failures:
        print(f"[bench] ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
