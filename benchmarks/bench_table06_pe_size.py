"""Table 6: performance across PE array sizes."""

from conftest import print_block

from repro.experiments.sensitivity import format_pe_sweep, pe_size_sweep


def test_table06_pe_size(benchmark):
    data = benchmark(pe_size_sweep)
    print_block(format_pe_sweep(data))
    # Paper shape: TileFlow is ~2x the baseline at small arrays and both
    # converge once the array is large enough.
    assert data[8]["tileflow"] < data[8]["baseline"]
    assert data[256]["baseline"] < data[8]["baseline"] / 10
