"""Table 7: FLAT granularities for T5 (batch 128) on Cloud."""

from conftest import print_block

from repro.experiments.sensitivity import (format_granularity,
                                           granularity_study)


def test_table07_granularity(benchmark):
    def run():
        return {scenario: granularity_study(scenario, tune_samples=16)
                for scenario in ("fixed", "explored", "limited")}

    results = benchmark(run)
    for scenario, rows in results.items():
        print_block(format_granularity(scenario, rows))
    fixed = {r.dataflow: r for r in results["fixed"]}
    # Paper shape: finer granularity -> faster and less on-chip memory.
    assert fixed["MGran"].cycles_1e6 > fixed["RGran"].cycles_1e6
    assert fixed["MGran"].l2_used_mb > fixed["RGran"].l2_used_mb
    limited = {r.dataflow: r for r in results["limited"]}
    assert limited["MGran"].oom and limited["BGran"].oom
    assert not limited["RGran"].oom and not limited["TileFlow"].oom
