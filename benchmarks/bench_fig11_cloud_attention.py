"""Fig. 11: self-attention dataflow comparison on the Cloud accelerator."""

from conftest import print_block

from repro.arch import cloud
from repro.experiments.comparison import (attention_comparison,
                                          format_normalized_cycles,
                                          format_onchip_movement,
                                          format_utilization)


def test_fig11_cloud_attention(benchmark):
    result = benchmark(attention_comparison, cloud())
    print_block(format_normalized_cycles(
        result, "Figure 11a: normalized cycles (Cloud)"))
    print_block(format_onchip_movement(
        result, 2, "Figure 11b: normalized L2 data movement"))
    print_block(format_onchip_movement(
        result, 1, "Figure 11c: normalized L1 data movement"))
    print_block(format_utilization(
        result, "Figure 11d: level-1 instances occupied"))
    gm = result.geomean_speedups()
    # Paper shape: fusion dataflows land close together and far above
    # Layerwise; Uni-pipe's lack of spatial tiling keeps it low.
    assert gm["flat_rgran"] > 3.0
    assert gm["tileflow"] > 3.0
    assert gm["unipipe"] < 2.0
