#!/usr/bin/env python
"""CI guard: fail when a pipeline pass's self-time share drifts.

Compares the ``pass_self_times`` section of a freshly generated
``BENCH_pipeline.json`` against the checked-in baseline.  Shares (each
pass's fraction of total ``model.pass.*`` self time) are machine-scale
free: a uniformly slower runner leaves them unchanged, but a hot-path
regression in one analysis shows up as that pass's share growing.

A pass fails the check when its share moved by more than ``--max-drift``
(default 1.5x) in either direction *and* at least one side is above
``--min-share`` (default 3%) — tiny passes (validate, resource) jitter
by multiples of their microsecond self-times without meaning anything.

Usage::

    python benchmarks/check_pass_drift.py BENCH_pipeline.json \
        BENCH_pipeline_current.json

Exits 0 when every pass is within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_shares(path: str) -> dict:
    with open(path) as handle:
        report = json.load(handle)
    section = report.get("pass_self_times")
    if not section or "passes" not in section:
        raise SystemExit(f"{path}: no pass_self_times section — regenerate "
                         f"with benchmarks/bench_pipeline.py")
    return {name: entry["share"]
            for name, entry in section["passes"].items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in BENCH_pipeline.json")
    parser.add_argument("current", help="freshly generated report")
    parser.add_argument("--max-drift", type=float, default=1.5,
                        help="allowed share ratio in either direction")
    parser.add_argument("--min-share", type=float, default=0.03,
                        help="ignore passes below this share on both sides")
    args = parser.parse_args(argv)

    base = load_shares(args.baseline)
    curr = load_shares(args.current)
    failures = []
    for name in sorted(set(base) | set(curr)):
        b, c = base.get(name, 0.0), curr.get(name, 0.0)
        if max(b, c) < args.min_share:
            print(f"[drift] {name}: {b:.1%} -> {c:.1%} (below "
                  f"{args.min_share:.0%} floor, ignored)")
            continue
        if b <= 0.0 or c <= 0.0:
            failures.append((name, b, c, float("inf")))
            continue
        ratio = max(b / c, c / b)
        status = "FAIL" if ratio > args.max_drift else "ok"
        print(f"[drift] {name}: {b:.1%} -> {c:.1%} ({ratio:.2f}x, {status})")
        if ratio > args.max_drift:
            failures.append((name, b, c, ratio))

    if failures:
        for name, b, c, ratio in failures:
            print(f"[drift] ERROR: pass {name!r} share drifted "
                  f"{b:.1%} -> {c:.1%} (>{args.max_drift:.2f}x)",
                  file=sys.stderr)
        return 1
    print(f"[drift] all passes within {args.max_drift:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
