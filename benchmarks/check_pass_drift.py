#!/usr/bin/env python
"""CI guard: fail when a pipeline pass's self-time share drifts.

Compares the ``pass_self_times`` section of a freshly generated
``BENCH_pipeline.json`` against the checked-in baseline.  Shares (each
pass's fraction of total ``model.pass.*`` self time) are machine-scale
free: a uniformly slower runner leaves them unchanged, but a hot-path
regression in one analysis shows up as that pass's share growing.

A pass fails the check when its share moved by more than ``--max-drift``
(default 1.5x) in either direction *and* at least one side is above
``--min-share`` (default 3%) — tiny passes (validate, resource) jitter
by multiples of their microsecond self-times without meaning anything.

Two batched-layer guards ride along:

* ``--recompute`` drops the ``current`` argument and measures the
  shares in-process instead, *after* running a batched MCTS tune in the
  same process — the batched sweeps must not perturb the scalar
  pipeline's per-pass profile (they price candidates outside it);
* ``--spot-check N`` prices a seeded random factor cohort of one fused
  genome through the batched ``CohortEvaluator`` and re-evaluates every
  priced member on a scalar-only engine: costs must match exactly, and
  every ``walkvol`` artifact the sweep published under the scalar cache
  keys must equal the value the scalar engine computes for that key.

Usage::

    python benchmarks/check_pass_drift.py BENCH_pipeline.json \
        BENCH_pipeline_current.json
    python benchmarks/check_pass_drift.py BENCH_pipeline.json \
        --recompute --spot-check 24

Exits 0 when every pass is within bounds and every spot check matched,
1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Dict, List


def load_shares(path: str) -> dict:
    with open(path) as handle:
        report = json.load(handle)
    section = report.get("pass_self_times")
    if not section or "passes" not in section:
        raise SystemExit(f"{path}: no pass_self_times section — regenerate "
                         f"with benchmarks/bench_pipeline.py")
    return {name: entry["share"]
            for name, entry in section["passes"].items()}


def recompute_shares_batched() -> dict:
    """Per-pass self-time shares measured with batching exercised.

    Runs a real batched MCTS tune first (enough samples to clear
    ``BATCH_MIN_SAMPLES``, so sweeps actually dispatch), then profiles
    the scalar pipeline with ``bench_pipeline.pass_self_times`` in the
    same process.  The batched layer lives entirely outside the
    ``model.pass.*`` spans, so the shares must match the checked-in
    scalar baseline within normal drift.
    """
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_pipeline import pass_self_times

    from repro import arch as arch_mod
    from repro import workloads
    from repro.analysis.batched.sweep import BATCH_MIN_SAMPLES
    from repro.engine import EvaluationEngine
    from repro.mapper import Genome

    workload = workloads.self_attention(2, 32, 64, expand_softmax=True)
    engine = EvaluationEngine(workload, arch_mod.edge(), batched=True)
    rng = random.Random(11)
    swept = 0
    for _ in range(10):  # not every random genome is batchable
        engine.tune_genome(Genome.random(workload, rng), seed=0,
                           samples=BATCH_MIN_SAMPLES)
        swept = engine.stats.to_dict().get("batch_fill", 0)
        if swept:
            break
    engine.shutdown()
    print(f"[drift] recompute: batched tune swept {swept} candidates "
          f"before profiling")
    section = pass_self_times()
    return {name: entry["share"]
            for name, entry in section["passes"].items()}


def spot_check(samples: int, seed: int) -> List[str]:
    """Scalar-vs-batched equality over one random cohort (see module
    docstring).  Returns a list of failure descriptions (empty = pass).
    """
    from repro import arch as arch_mod
    from repro import workloads
    from repro.analysis.batched.kernels import BatchedError
    from repro.analysis.batched.sweep import CohortEvaluator
    from repro.engine import EvaluationEngine
    from repro.mapper import Genome
    from repro.mapper.encoding import genome_factor_space

    workload = workloads.self_attention(2, 32, 64, expand_softmax=True)
    arch = arch_mod.edge()
    rng = random.Random(seed)
    batched_engine = EvaluationEngine(workload, arch, batched=True)
    scalar_engine = EvaluationEngine(workload, arch, batched=False)
    evaluator = None
    while evaluator is None:
        genome = Genome.random(workload, rng)
        try:
            evaluator = CohortEvaluator(
                batched_engine, genome,
                genome_factor_space(workload, genome))
        except BatchedError:
            continue
    choices = evaluator.planner.choices
    members = {tuple(rng.randrange(len(c)) for c in choices)
               for _ in range(samples)}
    costs = evaluator.costs_for(sorted(members))

    failures: List[str] = []
    checked = fallbacks = 0
    for member, cost in sorted(costs.items()):
        if cost is None:
            fallbacks += 1
            continue
        point = evaluator.planner.point_at(member)
        scalar = scalar_engine.cost_of(
            scalar_engine.evaluate_genome(genome, point))
        checked += 1
        if float(cost) != float(scalar):
            failures.append(f"cohort member {member}: batched cost {cost!r} "
                            f"!= scalar {scalar!r}")
    print(f"[drift] spot-check: {checked} members cost-compared, "
          f"{fallbacks} scalar fallbacks, {len(failures)} mismatches")

    # Artifact equality: every walk volume the sweep published must
    # equal what the scalar engine computed under the same cache key.
    batched_store = batched_engine.subtree_cache.store(
        batched_engine._subtree_ns, "walkvol").data
    scalar_store = scalar_engine.subtree_cache.store(
        scalar_engine._subtree_ns, "walkvol").data
    common = [key for key in batched_store if key in scalar_store]
    bad = [key for key in common
           if batched_store[key] != scalar_store[key]]
    for key in bad[:5]:
        failures.append(f"walkvol artifact {key!r}: batched "
                        f"{batched_store[key]!r} != scalar "
                        f"{scalar_store[key]!r}")
    print(f"[drift] spot-check: {len(common)} shared walkvol artifacts "
          f"compared, {len(bad)} mismatches")
    if checked == 0:
        failures.append("spot check priced no members (all fell back)")
    batched_engine.shutdown()
    scalar_engine.shutdown()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in BENCH_pipeline.json")
    parser.add_argument("current", nargs="?",
                        help="freshly generated report (omit with "
                             "--recompute)")
    parser.add_argument("--max-drift", type=float, default=1.5,
                        help="allowed share ratio in either direction")
    parser.add_argument("--min-share", type=float, default=0.03,
                        help="ignore passes below this share on both sides")
    parser.add_argument("--recompute", action="store_true",
                        help="measure current shares in-process with the "
                             "batched layer exercised first")
    parser.add_argument("--spot-check", type=int, default=0, metavar="N",
                        help="also cost/artifact-compare a random N-member "
                             "cohort between the batched and scalar paths")
    parser.add_argument("--spot-seed", type=int, default=20260808,
                        help="random seed of the spot-check cohort")
    args = parser.parse_args(argv)
    if bool(args.current) == bool(args.recompute):
        parser.error("pass exactly one of: a current report, --recompute")

    base = load_shares(args.baseline)
    curr = (recompute_shares_batched() if args.recompute
            else load_shares(args.current))
    failures = []
    for name in sorted(set(base) | set(curr)):
        b, c = base.get(name, 0.0), curr.get(name, 0.0)
        if max(b, c) < args.min_share:
            print(f"[drift] {name}: {b:.1%} -> {c:.1%} (below "
                  f"{args.min_share:.0%} floor, ignored)")
            continue
        if b <= 0.0 or c <= 0.0:
            failures.append((name, b, c, float("inf")))
            continue
        ratio = max(b / c, c / b)
        status = "FAIL" if ratio > args.max_drift else "ok"
        print(f"[drift] {name}: {b:.1%} -> {c:.1%} ({ratio:.2f}x, {status})")
        if ratio > args.max_drift:
            failures.append((name, b, c, ratio))

    spot_failures: List[str] = []
    if args.spot_check > 0:
        spot_failures = spot_check(args.spot_check, args.spot_seed)

    if failures or spot_failures:
        for name, b, c, ratio in failures:
            print(f"[drift] ERROR: pass {name!r} share drifted "
                  f"{b:.1%} -> {c:.1%} (>{args.max_drift:.2f}x)",
                  file=sys.stderr)
        for line in spot_failures:
            print(f"[drift] ERROR: {line}", file=sys.stderr)
        return 1
    print(f"[drift] all passes within {args.max_drift:.2f}x of baseline"
          + (", spot check clean" if args.spot_check else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
