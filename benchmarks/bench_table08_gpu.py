"""Table 8: long-sequence attention on the GPU-like specification."""

from conftest import print_block

from repro.experiments.gpu import format_gpu, gpu_evaluation


def test_table08_gpu(benchmark):
    rows = benchmark(gpu_evaluation)
    print_block(format_gpu(rows))
    # Paper shape: the row-stationary baseline eventually goes OOM while
    # the column-tiled TileFlow dataflow supports every length and wins.
    baseline_256k = [r for r in rows
                    if r.dataflow == "baseline" and r.seq_len == 262144]
    assert all(r.oom for r in baseline_256k)
    tileflow_rows = [r for r in rows if r.dataflow == "TileFlow"]
    assert all(not r.oom for r in tileflow_rows)
