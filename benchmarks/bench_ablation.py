"""Ablation benches for the model's design choices (DESIGN.md).

Not a paper figure: quantifies what the Seq-eviction rule, the RMW
accounting, and the Pipe binding each contribute, so modeling changes
that silently defeat a rule fail the build.
"""

from conftest import print_block

from repro.experiments.ablation import (binding_ablation,
                                        format_binding_ablation,
                                        format_rule_ablation,
                                        movement_rule_ablation)


def test_ablation_seq_eviction(benchmark):
    rows = benchmark(movement_rule_ablation, "eviction")
    print_block(format_rule_ablation("eviction", rows))
    by = {r.dataflow: r for r in rows}
    # Eviction only matters where Seq appears: Layerwise's root has no
    # loops, so attention dataflows shift little; the rule must never
    # *increase* traffic when disabled.
    assert all(r.dram_ratio <= 1.0 + 1e-9 for r in rows)


def test_ablation_rmw(benchmark):
    rows = benchmark(movement_rule_ablation, "rmw")
    print_block(format_rule_ablation("rmw", rows))
    assert all(r.dram_ratio <= 1.0 + 1e-9 for r in rows)
    assert all(r.cycle_ratio <= 1.0 + 1e-9 for r in rows)


def test_ablation_binding(benchmark):
    cycles = benchmark(binding_ablation, "Bert-S")
    print_block(format_binding_ablation(cycles))
    # Pipe must be the fastest binding for the same tree; Seq the slowest
    # or equal to Shar.
    assert cycles["Pipe"] <= cycles["Shar"] <= cycles["Seq"] * 1.001
