"""Fig. 13: energy breakdown of FLAT-RGran for two L1 sizes."""

from conftest import print_block

from repro.experiments.energy_breakdown import (L1_SIZES, energy_breakdown,
                                                format_breakdown)


def test_fig13_energy_breakdown(benchmark):
    result = benchmark(energy_breakdown)
    print_block(format_breakdown(result))
    small = result.average(L1_SIZES[0])
    large = result.average(L1_SIZES[1])
    # Paper shape: enlarging L1 makes L1 access dominate the energy.
    assert large["L1"] > small["L1"]
    assert large["L1"] > 0.4
    assert small["DRAM"] > large["DRAM"]
