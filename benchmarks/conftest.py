"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper table/figure: the benchmarked callable
runs the (budget-reduced) experiment, and the printed block is the same
rows/series the paper reports.  Absolute numbers differ from the paper
(the substrate is a model, not the authors' testbed); the *shapes* are
compared in EXPERIMENTS.md.
"""

import pytest


def print_block(text: str) -> None:
    print()
    print(text)
