"""Fig. 12: convolution-chain dataflow comparison on Cloud."""

from conftest import print_block

from repro.arch import cloud
from repro.experiments.comparison import (conv_comparison,
                                          format_dram_movement,
                                          format_normalized_cycles)


def test_fig12_convchain(benchmark):
    result = benchmark(conv_comparison, cloud(), tune_samples=16)
    print_block(format_normalized_cycles(
        result, "Figure 12a: normalized cycles (conv chains, Cloud)"))
    print_block(format_dram_movement(
        result, "Figure 12b: normalized DRAM access"))
    # Paper shape: Fused-Layer cuts DRAM access deeply (~73%) even when
    # its latency gain is small; ISOS provides no speedup.
    per_shape = result.by_shape()
    dram_cuts = []
    for shape, per_df in per_shape.items():
        base = per_df["layerwise"].result.dram_words()
        dram_cuts.append(per_df["fused_layer"].result.dram_words() / base)
    assert sum(dram_cuts) / len(dram_cuts) < 0.6
    gm = result.geomean_speedups()
    assert gm["isos"] < 1.6
